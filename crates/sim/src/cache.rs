//! Set-associative, sectored cache model.
//!
//! Volta caches use 128-byte lines split into four 32-byte sectors: a tag
//! match with a missing sector is a *sector miss* that fills only 32 bytes.
//! Both L1 and L2 are modelled this way; the coalescer in
//! [`engine`](crate::Gpu) already works at sector granularity, so the
//! cache is probed once per transaction.

/// Result of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheProbe {
    /// Tag and sector present.
    Hit,
    /// Tag present but sector absent (32-byte fill).
    SectorMiss,
    /// Tag absent (line allocation + 32-byte fill).
    LineMiss,
}

impl CacheProbe {
    /// Whether the probe found the requested data.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheProbe::Hit)
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid_sectors: u8,
    last_used: u64,
}

/// A sectored, set-associative cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct SectoredCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: u64,
    sector_bytes: u64,
    set_count: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SectoredCache {
    /// Builds a cache of `total_bytes` with `ways`-way associativity,
    /// `line_bytes` lines and `sector_bytes` sectors.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn new(total_bytes: u64, ways: u32, line_bytes: u64, sector_bytes: u64) -> Self {
        assert!(total_bytes > 0 && ways > 0 && line_bytes > 0 && sector_bytes > 0);
        assert_eq!(line_bytes % sector_bytes, 0);
        assert_eq!(
            total_bytes % line_bytes,
            0,
            "cache size must be a whole number of lines"
        );
        let lines = total_bytes / line_bytes;
        assert!(lines >= ways as u64, "cache smaller than one set");
        assert_eq!(
            lines % ways as u64,
            0,
            "cache lines must divide evenly into {ways}-way sets"
        );
        let set_count = lines / ways as u64;
        SectoredCache {
            sets: vec![Vec::with_capacity(ways as usize); set_count as usize],
            ways: ways as usize,
            line_bytes,
            sector_bytes,
            set_count,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64, u8) {
        let line_addr = addr / self.line_bytes;
        let set = (line_addr % self.set_count) as usize;
        let tag = line_addr / self.set_count;
        let sector = ((addr % self.line_bytes) / self.sector_bytes) as u8;
        (set, tag, sector)
    }

    /// Probes (and fills on miss) the sector containing `addr`.
    pub fn access(&mut self, addr: u64) -> CacheProbe {
        self.tick += 1;
        let (set_idx, tag, sector) = self.locate(addr);
        let tick = self.tick;
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        let sector_bit = 1u8 << sector;

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_used = tick;
            if line.valid_sectors & sector_bit != 0 {
                self.hits += 1;
                return CacheProbe::Hit;
            }
            line.valid_sectors |= sector_bit;
            self.misses += 1;
            return CacheProbe::SectorMiss;
        }

        self.misses += 1;
        if set.len() < ways {
            set.push(Line {
                tag,
                valid_sectors: sector_bit,
                last_used: tick,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|l| l.last_used)
                .expect("non-empty set");
            victim.tag = tag;
            victim.valid_sectors = sector_bit;
            victim.last_used = tick;
        }
        CacheProbe::LineMiss
    }

    /// Probes without filling (used for stores in a write-through,
    /// no-write-allocate L1).
    pub fn probe_only(&mut self, addr: u64) -> CacheProbe {
        let (set_idx, tag, sector) = self.locate(addr);
        let sector_bit = 1u8 << sector;
        match self.sets[set_idx].iter().find(|l| l.tag == tag) {
            Some(line) if line.valid_sectors & sector_bit != 0 => CacheProbe::Hit,
            Some(_) => CacheProbe::SectorMiss,
            None => CacheProbe::LineMiss,
        }
    }

    /// Invalidates everything (kernel boundary).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Demand accesses that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand accesses that missed (line or sector).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears the hit/miss counters but keeps contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of sets (attribution indexes per-set evidence by this).
    pub fn set_count(&self) -> usize {
        self.set_count as usize
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The set `addr` maps to and its line address (`addr /
    /// line_bytes`) — the same mapping [`access`](Self::access) uses,
    /// exposed so probes can attribute transactions without mutating
    /// the cache.
    pub fn set_of(&self, addr: u64) -> (usize, u64) {
        let (set, _, _) = self.locate(addr);
        (set, addr / self.line_bytes)
    }

    /// Valid sectors currently resident per set — an occupancy
    /// snapshot, one count per set in index order.
    pub fn per_set_valid_sectors(&self) -> Vec<u32> {
        self.sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|l| l.valid_sectors.count_ones())
                    .sum::<u32>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SectoredCache {
        // 2 sets x 2 ways x 128B lines = 512B.
        SectoredCache::new(512, 2, 128, 32)
    }

    #[test]
    #[should_panic(expected = "whole number of lines")]
    fn ragged_total_bytes_panics() {
        // 600B is not a whole number of 128B lines; the old code silently
        // truncated it to 4 lines.
        SectoredCache::new(600, 2, 128, 32);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_set_geometry_panics() {
        // 5 lines across 2 ways is not a whole number of sets; the old
        // code silently truncated to 2 sets (dropping a line).
        SectoredCache::new(640, 2, 128, 32);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
        assert_eq!(c.access(0x100), CacheProbe::Hit);
        assert_eq!(c.access(0x104), CacheProbe::Hit); // same sector
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_miss_within_resident_line() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
        assert_eq!(c.access(0x120), CacheProbe::SectorMiss); // sector 1 of same line
        assert_eq!(c.access(0x120), CacheProbe::Hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set index = (addr/128) % 2. Lines 0, 2, 4 all map to set 0.
        let (line0, line2, line4) = (0u64, 2 * 128, 4 * 128);
        c.access(line0);
        c.access(line2);
        c.access(line0); // refresh line 0
        c.access(line4); // evicts line 2 (LRU)
        assert_eq!(c.access(line0), CacheProbe::Hit);
        assert_eq!(c.access(line2), CacheProbe::LineMiss);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x100);
        c.flush();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
    }

    #[test]
    fn probe_only_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.probe_only(0x100), CacheProbe::LineMiss);
        assert_eq!(c.probe_only(0x100), CacheProbe::LineMiss);
        c.access(0x100);
        assert_eq!(c.probe_only(0x100), CacheProbe::Hit);
        assert_eq!(c.probe_only(0x120), CacheProbe::SectorMiss);
    }

    #[test]
    fn introspection_matches_geometry() {
        let mut c = tiny();
        assert_eq!(c.set_count(), 2);
        assert_eq!(c.line_bytes(), 128);
        assert_eq!(c.set_of(0x100), (0, 2)); // line 2 -> set 0
        assert_eq!(c.set_of(0x1a0), (1, 3)); // line 3 -> set 1
        assert_eq!(c.per_set_valid_sectors(), vec![0, 0]);
        c.access(0x100); // one sector in set 0
        c.access(0x120); // second sector, same line
        c.access(0x180); // one sector in set 1
        assert_eq!(c.per_set_valid_sectors(), vec![2, 1]);
        c.flush();
        assert_eq!(c.per_set_valid_sectors(), vec![0, 0]);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0x0);
        c.access(0x0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }
}
