//! Kernel traces: the interface between functional execution and timing.

use crate::instr::{InstrClass, Op};

/// The instruction stream of a single warp.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarpTrace {
    ops: Vec<Op>,
    vfunc_calls: u64,
}

impl WarpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        WarpTrace::default()
    }

    /// Appends an op, fusing consecutive ALU runs.
    pub fn push(&mut self, op: Op) {
        if let (Some(Op::Alu(prev)), Op::Alu(n)) = (self.ops.last_mut(), &op) {
            if let Some(sum) = prev.checked_add(*n) {
                *prev = sum;
                return;
            }
        }
        self.ops.push(op);
    }

    /// Records that one dynamic virtual-function call site executed
    /// (for Table 2's `vFuncPKI`).
    pub fn note_vfunc_call(&mut self) {
        self.vfunc_calls += 1;
    }

    /// Virtual-function calls noted on this warp.
    pub fn vfunc_calls(&self) -> u64 {
        self.vfunc_calls
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total dynamic instructions (ALU runs expanded).
    pub fn dyn_instrs(&self) -> u64 {
        self.ops.iter().map(Op::dyn_count).sum()
    }

    /// Dynamic instructions of one class.
    pub fn dyn_instrs_of(&self, class: InstrClass) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.class() == class)
            .map(Op::dyn_count)
            .sum()
    }

    /// `true` when no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A whole kernel: one trace per warp, in warp-id order.
#[derive(Clone, Debug, Default)]
pub struct KernelTrace {
    /// Per-warp instruction streams.
    pub warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// A kernel with no warps.
    pub fn new() -> Self {
        KernelTrace::default()
    }

    /// Total dynamic warp instructions across all warps.
    pub fn dyn_instrs(&self) -> u64 {
        self.warps.iter().map(WarpTrace::dyn_instrs).sum()
    }

    /// Total dynamic virtual-function calls across all warps.
    pub fn vfunc_calls(&self) -> u64 {
        self.warps.iter().map(WarpTrace::vfunc_calls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AccessTag, MemOp, Space};

    #[test]
    fn alu_fusion() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(2));
        t.push(Op::Alu(3));
        assert_eq!(t.ops().len(), 1);
        assert_eq!(t.dyn_instrs(), 5);
        t.push(Op::Branch);
        t.push(Op::Alu(1));
        assert_eq!(t.ops().len(), 3);
        assert_eq!(t.dyn_instrs(), 7);
    }

    #[test]
    fn alu_fusion_saturates() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(u16::MAX));
        t.push(Op::Alu(1));
        assert_eq!(t.ops().len(), 2);
        assert_eq!(t.dyn_instrs(), u16::MAX as u64 + 1);
    }

    #[test]
    fn class_counting() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(4));
        t.push(Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask: 1,
            addrs: vec![0].into_boxed_slice(),
            tag: AccessTag::Field,
        }));
        t.push(Op::IndirectCall { target: 0 });
        t.push(Op::Ret);
        assert_eq!(t.dyn_instrs_of(InstrClass::Compute), 4);
        assert_eq!(t.dyn_instrs_of(InstrClass::Mem), 1);
        assert_eq!(t.dyn_instrs_of(InstrClass::Ctrl), 2);
    }

    #[test]
    fn kernel_totals() {
        let mut k = KernelTrace::new();
        let mut w = WarpTrace::new();
        w.push(Op::Alu(10));
        w.note_vfunc_call();
        k.warps.push(w.clone());
        k.warps.push(w);
        assert_eq!(k.dyn_instrs(), 20);
        assert_eq!(k.vfunc_calls(), 2);
    }
}
