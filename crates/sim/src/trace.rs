//! Kernel traces: the interface between functional execution and timing.

use crate::instr::{AccessTag, InstrClass, LaneAddrs, MemOp, Op, Space};

/// The instruction stream of a single warp.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarpTrace {
    ops: Vec<Op>,
    /// Shared arena for [`LaneAddrs::Interned`] spans: one flat buffer
    /// instead of one boxed slice per memory op, so recording a trace
    /// allocates O(log n) times instead of O(ops).
    lane_arena: Vec<u64>,
    vfunc_calls: u64,
}

impl WarpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        WarpTrace::default()
    }

    /// Appends an op, fusing consecutive ALU runs.
    pub fn push(&mut self, op: Op) {
        if let (Some(Op::Alu(prev)), Op::Alu(n)) = (self.ops.last_mut(), &op) {
            if let Some(sum) = prev.checked_add(*n) {
                *prev = sum;
                return;
            }
        }
        self.ops.push(op);
    }

    /// Appends a memory op whose dense lane addresses come from
    /// `lane_addrs` (in mask-bit order), interning them straight into
    /// the warp's lane arena — the allocation-free path the functional
    /// pass records through.
    pub fn push_mem(
        &mut self,
        space: Space,
        is_store: bool,
        width: u8,
        mask: u32,
        tag: AccessTag,
        lane_addrs: impl IntoIterator<Item = u64>,
    ) {
        let start = self.lane_arena.len() as u32;
        self.lane_arena.extend(lane_addrs);
        let len = self.lane_arena.len() as u32 - start;
        debug_assert_eq!(len, mask.count_ones(), "one dense address per mask bit");
        self.ops.push(Op::Mem(MemOp {
            space,
            is_store,
            width,
            mask,
            addrs: LaneAddrs::Interned { start, len },
            tag,
        }));
    }

    /// Resolves a memory op's dense lane addresses. Interned ops must
    /// belong to this warp trace.
    pub fn lanes<'a>(&'a self, m: &'a MemOp) -> &'a [u64] {
        match &m.addrs {
            LaneAddrs::Owned(b) => b,
            LaneAddrs::Interned { start, len } => {
                &self.lane_arena[*start as usize..(*start + *len) as usize]
            }
        }
    }

    /// Records that one dynamic virtual-function call site executed
    /// (for Table 2's `vFuncPKI`).
    pub fn note_vfunc_call(&mut self) {
        self.vfunc_calls += 1;
    }

    /// Virtual-function calls noted on this warp.
    pub fn vfunc_calls(&self) -> u64 {
        self.vfunc_calls
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total dynamic instructions (ALU runs expanded).
    pub fn dyn_instrs(&self) -> u64 {
        self.ops.iter().map(Op::dyn_count).sum()
    }

    /// Dynamic instructions of one class.
    pub fn dyn_instrs_of(&self, class: InstrClass) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.class() == class)
            .map(Op::dyn_count)
            .sum()
    }

    /// `true` when no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A whole kernel: one trace per warp, in warp-id order.
#[derive(Clone, Debug, Default)]
pub struct KernelTrace {
    /// Per-warp instruction streams.
    pub warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// A kernel with no warps.
    pub fn new() -> Self {
        KernelTrace::default()
    }

    /// Total dynamic warp instructions across all warps.
    pub fn dyn_instrs(&self) -> u64 {
        self.warps.iter().map(WarpTrace::dyn_instrs).sum()
    }

    /// Total dynamic virtual-function calls across all warps.
    pub fn vfunc_calls(&self) -> u64 {
        self.warps.iter().map(WarpTrace::vfunc_calls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AccessTag, LaneAddrs, MemOp, Space};

    #[test]
    fn alu_fusion() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(2));
        t.push(Op::Alu(3));
        assert_eq!(t.ops().len(), 1);
        assert_eq!(t.dyn_instrs(), 5);
        t.push(Op::Branch);
        t.push(Op::Alu(1));
        assert_eq!(t.ops().len(), 3);
        assert_eq!(t.dyn_instrs(), 7);
    }

    #[test]
    fn alu_fusion_saturates() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(u16::MAX));
        t.push(Op::Alu(1));
        assert_eq!(t.ops().len(), 2);
        assert_eq!(t.dyn_instrs(), u16::MAX as u64 + 1);
    }

    #[test]
    fn class_counting() {
        let mut t = WarpTrace::new();
        t.push(Op::Alu(4));
        t.push(Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask: 1,
            addrs: vec![0].into(),
            tag: AccessTag::Field,
        }));
        t.push(Op::IndirectCall { target: 0 });
        t.push(Op::Ret);
        assert_eq!(t.dyn_instrs_of(InstrClass::Compute), 4);
        assert_eq!(t.dyn_instrs_of(InstrClass::Mem), 1);
        assert_eq!(t.dyn_instrs_of(InstrClass::Ctrl), 2);
    }

    #[test]
    fn push_mem_interns_into_arena() {
        let mut t = WarpTrace::new();
        t.push_mem(Space::Global, false, 8, 0b101, AccessTag::Field, [128, 256]);
        t.push_mem(Space::Global, true, 4, 0b1, AccessTag::Other, [512]);
        let [Op::Mem(a), Op::Mem(b)] = t.ops() else {
            panic!("expected two mem ops");
        };
        assert!(matches!(a.addrs, LaneAddrs::Interned { start: 0, len: 2 }));
        assert_eq!(t.lanes(a), &[128, 256]);
        assert_eq!(t.lanes(b), &[512]);
        // Owned ops resolve through the same accessor.
        let owned = MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask: 0b11,
            addrs: vec![8, 16].into(),
            tag: AccessTag::Field,
        };
        assert_eq!(t.lanes(&owned), &[8, 16]);
    }

    #[test]
    fn kernel_totals() {
        let mut k = KernelTrace::new();
        let mut w = WarpTrace::new();
        w.push(Op::Alu(10));
        w.note_vfunc_call();
        k.warps.push(w.clone());
        k.warps.push(w);
        assert_eq!(k.dyn_instrs(), 20);
        assert_eq!(k.vfunc_calls(), 2);
    }
}
