//! Global engine liveness counters for the live-telemetry stall
//! watchdog.
//!
//! A stuck sweep cell cannot report on itself — its worker thread is
//! buried inside [`Gpu::execute`](crate::Gpu::execute). This module
//! gives an outside observer (the `gvf_bench::events` watchdog thread)
//! a cheap process-wide liveness signal: cumulative **epochs** advanced
//! by every engine instance, cumulative **simulated cycles** of every
//! finished kernel, and the number of **kernels** completed. Two stall
//! samples with identical counters mean no engine in the process made
//! forward progress between them; growing counters mean the cell is
//! slow, not dead.
//!
//! Cost model: like [`spans`](crate::spans), recording is **off by
//! default** behind one relaxed [`AtomicBool`], read once per
//! `execute` call (not per epoch). When enabled, the engine batches
//! epoch counts locally and publishes every
//! [`EPOCH_PUBLISH_BATCH`] epochs, so the hot loop pays one local
//! increment plus a rare relaxed `fetch_add` — nothing feeds back into
//! simulated timing, and stdout is untouched (the zero-overhead gate
//! runs with this disabled).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How many locally-counted epochs accumulate before the engine
/// publishes them to the global counter. Large enough that the atomic
/// is off the hot path, small enough that the watchdog sees movement
/// within milliseconds.
pub const EPOCH_PUBLISH_BATCH: u64 = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCHS: AtomicU64 = AtomicU64::new(0);
static CYCLES: AtomicU64 = AtomicU64::new(0);
static KERNELS: AtomicU64 = AtomicU64::new(0);

/// Turns progress publishing on, process-wide. Called by the harness
/// when live telemetry (`--events-out`) is enabled; like
/// [`spans::enable`](crate::spans::enable) there is no `disable`.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether engines publish progress counters.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds a batch of advanced epochs (called by the engine's epoch loops,
/// pre-batched).
pub fn add_epochs(n: u64) {
    EPOCHS.fetch_add(n, Ordering::Relaxed);
}

/// Records one finished kernel and its final simulated cycle count.
pub fn kernel_finished(cycles: u64) {
    CYCLES.fetch_add(cycles, Ordering::Relaxed);
    KERNELS.fetch_add(1, Ordering::Relaxed);
}

/// A consistent-enough read of the counters (each is independently
/// monotone; the watchdog only compares samples for movement).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineProgress {
    /// Cumulative epochs advanced by every engine instance.
    pub epochs: u64,
    /// Cumulative final simulated cycles of finished kernels.
    pub cycles: u64,
    /// Kernels completed.
    pub kernels: u64,
}

/// The current counter values (zeros until [`enable`]d engines run).
pub fn snapshot() -> EngineProgress {
    EngineProgress {
        epochs: EPOCHS.load(Ordering::Relaxed),
        cycles: CYCLES.load(Ordering::Relaxed),
        kernels: KERNELS.load(Ordering::Relaxed),
    }
}

/// Epoch-batching helper owned by one engine invocation: counts locally
/// and publishes in [`EPOCH_PUBLISH_BATCH`] chunks. Inert (zero atomic
/// traffic) when progress publishing was disabled at construction.
#[derive(Debug)]
pub(crate) struct EpochBatcher {
    track: bool,
    pending: u64,
}

impl EpochBatcher {
    pub(crate) fn new() -> Self {
        EpochBatcher {
            track: enabled(),
            pending: 0,
        }
    }

    #[inline]
    pub(crate) fn tick(&mut self) {
        if self.track {
            self.pending += 1;
            if self.pending >= EPOCH_PUBLISH_BATCH {
                add_epochs(self.pending);
                self.pending = 0;
            }
        }
    }
}

impl Drop for EpochBatcher {
    fn drop(&mut self) {
        if self.track && self.pending > 0 {
            add_epochs(self.pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global and tests share a process, so every
    // assertion is on deltas.

    #[test]
    fn disabled_batcher_publishes_nothing() {
        if enabled() {
            return; // another test already enabled publishing
        }
        let before = snapshot();
        {
            let mut b = EpochBatcher::new();
            for _ in 0..10 {
                b.tick();
            }
        }
        assert_eq!(snapshot().epochs, before.epochs);
    }

    #[test]
    fn enabled_batcher_publishes_exact_epoch_count() {
        enable();
        let before = snapshot();
        let n = EPOCH_PUBLISH_BATCH * 2 + 7;
        {
            let mut b = EpochBatcher::new();
            for _ in 0..n {
                b.tick();
            }
        }
        assert_eq!(snapshot().epochs, before.epochs + n);
    }

    #[test]
    fn kernel_finish_accumulates_cycles() {
        enable();
        let before = snapshot();
        kernel_finished(123);
        kernel_finished(7);
        let after = snapshot();
        assert_eq!(after.kernels, before.kernels + 2);
        assert_eq!(after.cycles, before.cycles + 130);
    }
}
