//! Host-performance telemetry: where does the *simulator's* wall-clock
//! time go?
//!
//! PR 2 made the simulated machine observable; this module observes the
//! machine running the simulation. It is a process-wide collector that
//! accumulates, with negligible overhead (a handful of clock reads and
//! atomic adds per simulation cell, never per simulated event):
//!
//! - **phase time** — host nanoseconds attributed to the
//!   [`Phase::Alloc`] (object construction, range finalization, host
//!   frame prep) and [`Phase::Simulate`] (functional trace generation +
//!   timing replay) phases, fed by `gvf-workloads`' `Rig`; the
//!   setup/report phases are derived from the sweep bounds recorded by
//!   the harness ([`record_sweep`]);
//! - **pool telemetry** — per-worker busy / queue-wait / idle time and
//!   cell counts from [`crate::SimPool::run_timed`], one
//!   [`SweepTelemetry`] per sweep;
//! - **peak RSS** — `VmHWM` from `/proc/self/status`
//!   ([`peak_rss_bytes`]), `None` off Linux.
//!
//! Everything here is **host-side only**: nothing feeds back into
//! simulated timing, nothing prints to stdout (the stderr-only rule of
//! the determinism contract), and the harness excludes the emitted
//! `hostPerf` manifest section from the serial-vs-parallel determinism
//! diff — wall-clock numbers differ run to run by design.
//!
//! The collector is global because its producers live in three crates
//! (`gvf-sim`'s pool, `gvf-workloads`' rig, `gvf-bench`'s harness) and
//! threading a context handle through every workload entry point would
//! put a telemetry parameter in each of the eleven apps' signatures.
//! Accumulation is monotonic and thread-safe; [`snapshot`] reads a
//! consistent view at emission time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A host phase that accumulates attributed nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Object construction, allocator work, host-side frame prep.
    Alloc,
    /// Functional kernel execution plus timing-model replay.
    Simulate,
}

/// Busy/wait accounting for one pool worker over one sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Nanoseconds spent inside simulation cells.
    pub busy_ns: u64,
    /// Nanoseconds spent acquiring work (cursor fetch + the final
    /// empty-queue probe). Scheduling overhead, not simulation.
    pub queue_wait_ns: u64,
    /// Cells this worker completed.
    pub cells: u64,
}

/// What one [`crate::SimPool`] run measured about itself.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Wall nanoseconds from first cell dispatched to last joined.
    pub wall_ns: u64,
    /// Resolved worker count.
    pub jobs: usize,
    /// Per-worker accounting, indexed by worker id. A worker's idle
    /// time is `wall_ns - busy_ns - queue_wait_ns` (it exists because
    /// the pool only joins once every cell is done).
    pub workers: Vec<WorkerTelemetry>,
}

/// One harness sweep: a labelled [`PoolTelemetry`] plus the cell count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepTelemetry {
    /// The sweep's label (usually the figure binary's name).
    pub label: String,
    /// Grid cells executed.
    pub cells: u64,
    /// The pool's self-measurement.
    pub pool: PoolTelemetry,
}

/// A consistent read of the collector, taken at emission time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostPerfSnapshot {
    /// Wall nanoseconds since [`process_start`] was first anchored.
    pub wall_ns: u64,
    /// Wall nanoseconds from anchor to the first sweep's start (flag
    /// parsing, binary startup); equals `wall_ns` when nothing swept.
    pub setup_ns: u64,
    /// Wall nanoseconds from the last sweep's end to this snapshot
    /// (table formatting, artifact emission); `0` when nothing swept.
    pub report_ns: u64,
    /// Attributed [`Phase::Alloc`] nanoseconds, summed across workers
    /// (CPU time, so it can exceed the sweep's wall time).
    pub alloc_ns: u64,
    /// Attributed [`Phase::Simulate`] nanoseconds, summed across
    /// workers.
    pub simulate_ns: u64,
    /// One entry per harness sweep, in execution order.
    pub sweeps: Vec<SweepTelemetry>,
    /// Peak resident set size in bytes (`VmHWM`), `None` when the
    /// platform does not expose it.
    pub peak_rss_bytes: Option<u64>,
}

struct Collector {
    start: Instant,
    phase_ns: [AtomicU64; 2],
    first_sweep_start_ns: AtomicU64,
    last_sweep_end_ns: AtomicU64,
    sweeps: Mutex<Vec<SweepTelemetry>>,
}

/// Sentinel for "no sweep start recorded yet" (the end-bound sentinel
/// is `0`, so it can grow through `fetch_max`).
const UNSET: u64 = u64::MAX;

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        start: Instant::now(),
        phase_ns: [AtomicU64::new(0), AtomicU64::new(0)],
        first_sweep_start_ns: AtomicU64::new(UNSET),
        last_sweep_end_ns: AtomicU64::new(0),
        sweeps: Mutex::new(Vec::new()),
    })
}

/// Anchors (on first call) and returns the process-wide start instant
/// all wall-clock figures are measured from. Harness binaries call this
/// as their first statement so `setup` covers flag parsing.
pub fn process_start() -> Instant {
    collector().start
}

/// Nanoseconds elapsed since [`process_start`].
pub fn elapsed_ns() -> u64 {
    collector().start.elapsed().as_nanos() as u64
}

/// Adds attributed nanoseconds to a phase (called by the workload rig
/// once per kernel launch / rig teardown, never per simulated event).
pub fn add_phase_ns(phase: Phase, ns: u64) {
    collector().phase_ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
}

/// Records one finished sweep and extends the sweep bounds that define
/// the derived setup/report phases. `started_ns_ago` is how long before
/// *now* the sweep began (its wall time plus any heartbeat tail).
pub fn record_sweep(sweep: SweepTelemetry, started_ns_ago: u64) {
    let c = collector();
    let now = elapsed_ns();
    let start = now.saturating_sub(started_ns_ago);
    // First writer wins for the sweep start; last writer wins for the
    // end. Both are monotone under concurrent sweeps.
    let _ = c
        .first_sweep_start_ns
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |prev| {
            if prev == UNSET || start < prev {
                Some(start)
            } else {
                None
            }
        });
    c.last_sweep_end_ns.fetch_max(now, Ordering::Relaxed);
    c.sweeps.lock().expect("sweep telemetry mutex").push(sweep);
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` (`VmHWM`, recorded by the kernel in kilobytes).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// A consistent view of everything collected so far. Cheap enough to
/// call once per artifact emission; not meant for hot loops.
pub fn snapshot() -> HostPerfSnapshot {
    let c = collector();
    let wall_ns = elapsed_ns();
    let first = c.first_sweep_start_ns.load(Ordering::Relaxed);
    let last = c.last_sweep_end_ns.load(Ordering::Relaxed);
    HostPerfSnapshot {
        wall_ns,
        setup_ns: if first == UNSET { wall_ns } else { first },
        report_ns: if last == 0 {
            0
        } else {
            wall_ns.saturating_sub(last)
        },
        alloc_ns: c.phase_ns[Phase::Alloc as usize].load(Ordering::Relaxed),
        simulate_ns: c.phase_ns[Phase::Simulate as usize].load(Ordering::Relaxed),
        sweeps: c.sweeps.lock().expect("sweep telemetry mutex").clone(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_snapshot_is_monotone() {
        let before = snapshot();
        add_phase_ns(Phase::Alloc, 1_000);
        add_phase_ns(Phase::Simulate, 2_000);
        let after = snapshot();
        assert!(after.alloc_ns >= before.alloc_ns + 1_000);
        assert!(after.simulate_ns >= before.simulate_ns + 2_000);
        assert!(after.wall_ns >= before.wall_ns);
    }

    #[test]
    fn sweep_bounds_shape_setup_and_report() {
        record_sweep(
            SweepTelemetry {
                label: "test".into(),
                cells: 3,
                pool: PoolTelemetry::default(),
            },
            0,
        );
        let snap = snapshot();
        assert!(snap.sweeps.iter().any(|s| s.label == "test"));
        // A sweep exists, so setup must end at (or before) now and the
        // report tail starts counting.
        assert!(snap.setup_ns <= snap.wall_ns);
    }

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tfig6\nVmPeak:\t  999 kB\nVmHWM:\t  1234 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(1234 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_readable_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM present");
        assert!(rss > 0);
    }
}
