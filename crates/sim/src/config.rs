//! GPU configuration.

/// Parameters of the simulated GPU.
///
/// Defaults ([`GpuConfig::v100`]) approximate an NVIDIA Volta V100, the
/// machine the paper evaluates on: 80 SMs, 64 resident warps per SM,
/// 4 warp schedulers per SM, a 128 KiB sectored L1 per SM, a 6 MiB shared
/// L2, and a high-latency, high-bandwidth DRAM. The simulator is
/// cycle-approximate; these knobs set relative costs, and the reproduction
/// compares *ratios* between dispatch strategies, not absolute cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM (occupancy limit).
    pub max_warps_per_sm: u32,
    /// Warp schedulers per SM (each issues ≤ 1 instruction per cycle).
    pub schedulers_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,

    /// Dependent-ALU latency in cycles.
    pub alu_latency: u64,
    /// Extra cycles per additional ALU op in a fused [`Op::Alu`] run.
    ///
    /// [`Op::Alu`]: crate::Op::Alu
    pub alu_chain_latency: u64,
    /// Taken/direct branch latency.
    pub branch_latency: u64,
    /// Indirect call latency (SIMT stack push + target fetch).
    pub indirect_call_latency: u64,
    /// Return latency.
    pub ret_latency: u64,

    /// L1 hit latency.
    pub l1_latency: u64,
    /// L1 data cache size in bytes (per SM).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L2 hit latency (beyond L1).
    pub l2_latency: u64,
    /// L2 size in bytes (device-wide).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Number of L2 slices (address-interleaved ports).
    pub l2_slices: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Sector size in bytes (memory transaction granularity).
    pub sector_bytes: u64,

    /// DRAM access latency (beyond L2).
    pub dram_latency: u64,
    /// Number of DRAM channels (address-interleaved).
    pub dram_channels: u32,
    /// Cycles a channel is busy per 32-byte sector transferred.
    pub dram_sector_cycles: u64,

    /// Maximum outstanding loads per warp before issue back-pressures
    /// (per-warp memory-level parallelism, as the LSU scoreboard allows).
    pub max_pending_loads: usize,
    /// Maximum outstanding L1 miss sectors per SM (MSHR capacity).
    /// Bounds how deep the memory system can be flooded, keeping
    /// individual miss latencies realistic under load.
    pub mshr_per_sm: usize,
    /// Depth of the SM's LSU input queue, in sectors. A load defers when
    /// the L1 port is booked more than this far ahead — the issue-side
    /// back-pressure that keeps the port causal under bursts.
    pub l1_queue_cap: u64,

    /// Constant-cache hit latency.
    pub const_latency: u64,
    /// Constant-cache miss latency (fill from L2/DRAM path).
    pub const_miss_latency: u64,
    /// Constant cache size in bytes (per SM).
    pub const_bytes: u64,
}

impl GpuConfig {
    /// A V100-like configuration (the paper's silicon testbed).
    pub fn v100() -> Self {
        GpuConfig {
            num_sms: 80,
            max_warps_per_sm: 64,
            schedulers_per_sm: 4,
            warp_size: 32,
            alu_latency: 4,
            alu_chain_latency: 1,
            branch_latency: 8,
            indirect_call_latency: 22,
            ret_latency: 8,
            l1_latency: 28,
            l1_bytes: 128 << 10,
            l1_ways: 4,
            l2_latency: 190,
            l2_bytes: 6 << 20,
            l2_ways: 16,
            l2_slices: 32,
            line_bytes: 128,
            sector_bytes: 32,
            dram_latency: 460,
            dram_channels: 32,
            dram_sector_cycles: 2,
            max_pending_loads: 24,
            mshr_per_sm: 64,
            l1_queue_cap: 64,
            const_latency: 8,
            const_miss_latency: 220,
            const_bytes: 2 << 10,
        }
    }

    /// A Pascal P100-like configuration (the generation before Volta;
    /// the paper notes it "examined code from several different GPU
    /// generations and observe[d] similar behavior").
    pub fn p100() -> Self {
        GpuConfig {
            num_sms: 56,
            max_warps_per_sm: 64,
            l1_bytes: 24 << 10,
            l1_ways: 4,
            l2_bytes: 4 << 20,
            dram_latency: 500,
            dram_channels: 32,
            ..Self::v100()
        }
    }

    /// An Ampere A100-like configuration (the generation after Volta).
    pub fn a100() -> Self {
        GpuConfig {
            num_sms: 108,
            max_warps_per_sm: 64,
            l1_bytes: 192 << 10,
            l2_bytes: 40 << 20,
            l2_slices: 40,
            dram_latency: 420,
            dram_channels: 40,
            dram_sector_cycles: 1,
            ..Self::v100()
        }
    }

    /// Scales this configuration's *shared* bandwidth resources down to
    /// `num_sms` SMs, like [`v100_scaled`](Self::v100_scaled) but from an
    /// arbitrary base machine.
    ///
    /// # Panics
    /// Panics if `num_sms` is zero.
    pub fn scaled_to(&self, num_sms: u32) -> Self {
        assert!(num_sms > 0, "at least one SM");
        let scale = |v: u64| (v * num_sms as u64 / self.num_sms as u64).max(1);
        // Round the scaled L2 down to a whole number of sets; the cache
        // model rejects geometries that do not divide evenly.
        let l2_set_bytes = self.line_bytes * self.l2_ways as u64;
        let l2_bytes = scale(self.l2_bytes).max(128 << 10) / l2_set_bytes * l2_set_bytes;
        GpuConfig {
            num_sms,
            l2_bytes: l2_bytes.max(l2_set_bytes),
            l2_slices: (scale(self.l2_slices as u64) as u32).max(2),
            dram_channels: (scale(self.dram_channels as u64) as u32).max(2),
            ..self.clone()
        }
    }

    /// A V100 scaled down to `num_sms` SMs, shrinking the *shared*
    /// bandwidth resources (L2 capacity and slices, DRAM channels)
    /// proportionally while keeping per-SM resources and latencies.
    ///
    /// Simulator methodology: the evaluation runs workloads ~16× smaller
    /// than the paper's, so the machine shrinks with them — otherwise a
    /// small kernel leaves 80 SMs at one warp each and *no latency
    /// hiding*, which distorts every memory-system effect the paper
    /// measures.
    ///
    /// # Panics
    /// Panics if `num_sms` is zero.
    pub fn v100_scaled(num_sms: u32) -> Self {
        Self::v100().scaled_to(num_sms)
    }

    /// A deliberately tiny configuration for fast unit tests: 2 SMs,
    /// small caches, short latencies. Cache pressure appears with only a
    /// few KiB of data.
    pub fn small() -> Self {
        GpuConfig {
            num_sms: 2,
            max_warps_per_sm: 8,
            schedulers_per_sm: 2,
            warp_size: 32,
            alu_latency: 4,
            alu_chain_latency: 1,
            branch_latency: 8,
            indirect_call_latency: 22,
            ret_latency: 8,
            l1_latency: 20,
            l1_bytes: 4 << 10,
            l1_ways: 4,
            l2_latency: 100,
            l2_bytes: 32 << 10,
            l2_ways: 8,
            l2_slices: 4,
            line_bytes: 128,
            sector_bytes: 32,
            dram_latency: 300,
            dram_channels: 4,
            dram_sector_cycles: 2,
            max_pending_loads: 8,
            mshr_per_sm: 48,
            l1_queue_cap: 32,
            const_latency: 8,
            const_miss_latency: 120,
            const_bytes: 1 << 10,
        }
    }

    /// Number of 32-byte sectors per cache line.
    pub fn sectors_per_line(&self) -> u64 {
        self.line_bytes / self.sector_bytes
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_shape() {
        let c = GpuConfig::v100();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.sectors_per_line(), 4);
        assert!(c.dram_latency > c.l2_latency && c.l2_latency > c.l1_latency);
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(GpuConfig::default(), GpuConfig::v100());
    }

    #[test]
    fn scaled_machine_shrinks_shared_resources() {
        let full = GpuConfig::v100();
        let small = GpuConfig::v100_scaled(8);
        assert_eq!(small.num_sms, 8);
        assert!(small.l2_bytes < full.l2_bytes);
        assert!(small.dram_channels < full.dram_channels);
        // Per-SM resources are untouched.
        assert_eq!(small.l1_bytes, full.l1_bytes);
        assert_eq!(small.l1_latency, full.l1_latency);
    }

    #[test]
    fn generations_differ_sensibly() {
        let (p, v, a) = (GpuConfig::p100(), GpuConfig::v100(), GpuConfig::a100());
        assert!(p.l1_bytes < v.l1_bytes && v.l1_bytes < a.l1_bytes);
        assert!(p.l2_bytes < v.l2_bytes && v.l2_bytes < a.l2_bytes);
        assert!(p.num_sms < v.num_sms && v.num_sms < a.num_sms);
    }
}
