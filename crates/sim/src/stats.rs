//! Hardware-counter-style statistics, mirroring the NVProf metrics the
//! paper reports.

use crate::instr::{AccessTag, InstrClass};
use std::fmt;
use std::ops::AddAssign;

/// Counters collected during one simulated kernel execution.
///
/// The fields map onto the paper's measurements:
/// - [`cycles`](Stats::cycles) → kernel execution time (Figs. 6, 10a,
///   11, 12),
/// - [`instrs_mem`](Stats::instrs_mem) /
///   [`instrs_compute`](Stats::instrs_compute) /
///   [`instrs_ctrl`](Stats::instrs_ctrl) → dynamic warp instruction
///   breakdown (Fig. 7),
/// - [`global_load_transactions`](Stats::global_load_transactions) →
///   Fig. 8,
/// - [`l1_hits`](Stats::l1_hits) / [`l1_accesses`](Stats::l1_accesses) →
///   L1 hit rate (Fig. 9),
/// - [`stall_by_tag`](Stats::stall_by_tag) → the PC-sampling latency
///   attribution of Fig. 1b.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Simulated kernel cycles.
    pub cycles: u64,
    /// Dynamic warp memory instructions.
    pub instrs_mem: u64,
    /// Dynamic warp compute instructions.
    pub instrs_compute: u64,
    /// Dynamic warp control instructions.
    pub instrs_ctrl: u64,
    /// Global-memory load transactions (32-byte sectors after coalescing).
    pub global_load_transactions: u64,
    /// Global-memory store transactions.
    pub global_store_transactions: u64,
    /// L1 demand accesses (load sectors).
    pub l1_accesses: u64,
    /// L1 demand hits.
    pub l1_hits: u64,
    /// L2 demand accesses.
    pub l2_accesses: u64,
    /// L2 demand hits.
    pub l2_hits: u64,
    /// DRAM sector accesses.
    pub dram_accesses: u64,
    /// Constant-cache accesses.
    pub const_accesses: u64,
    /// Constant-cache hits.
    pub const_hits: u64,
    /// Warp-stall cycles attributed to each [`AccessTag`] plus the
    /// indirect call; indexed by [`AccessTag::index`] with the last slot
    /// holding indirect-call stalls.
    pub stall_by_tag: [u64; AccessTag::ALL.len() + 1],
    /// Global load transactions attributed to each [`AccessTag`] —
    /// the empirical access counts of the paper's Table 1.
    pub load_transactions_by_tag: [u64; AccessTag::ALL.len()],
    /// Number of warps executed.
    pub warps: u64,
    /// Dynamic virtual-function call count (for vFuncPKI, Table 2).
    pub vfunc_calls: u64,
}

/// Index into [`Stats::stall_by_tag`] for indirect-call stalls
/// (operation **C** of Fig. 1).
pub const STALL_INDIRECT_CALL: usize = AccessTag::ALL.len();

impl Stats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records `n` dynamic instructions of `class`.
    pub fn count_instrs(&mut self, class: InstrClass, n: u64) {
        match class {
            InstrClass::Mem => self.instrs_mem += n,
            InstrClass::Compute => self.instrs_compute += n,
            InstrClass::Ctrl => self.instrs_ctrl += n,
        }
    }

    /// Total dynamic warp instructions.
    pub fn total_instrs(&self) -> u64 {
        self.instrs_mem + self.instrs_compute + self.instrs_ctrl
    }

    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }

    /// Dynamic virtual-function calls per thousand instructions
    /// (Table 2's `vFuncPKI`).
    pub fn vfunc_pki(&self) -> f64 {
        let total = self.total_instrs();
        if total == 0 {
            0.0
        } else {
            self.vfunc_calls as f64 * 1000.0 / total as f64
        }
    }

    /// Warp instructions per cycle (0 when no cycles elapsed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_instrs() as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over `baseline` (> 1 means faster), the
    /// ratio every cycles figure (6, 10, 11, 12) plots. 0 when this
    /// run recorded no cycles.
    pub fn speedup_vs(&self, baseline: &Stats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// This run's global-load transactions relative to `baseline`'s —
    /// the normalized traffic of Fig. 8. A zero-traffic baseline is
    /// clamped to 1 so the ratio stays finite.
    pub fn load_transactions_vs(&self, baseline: &Stats) -> f64 {
        self.global_load_transactions as f64 / baseline.global_load_transactions.max(1) as f64
    }

    /// Global load transactions tagged `tag` per virtual-function call
    /// (Table 1's measured per-call access cost). Zero calls clamp
    /// to 1.
    pub fn load_transactions_per_call(&self, tag: AccessTag) -> f64 {
        self.load_transactions(tag) as f64 / self.vfunc_calls.max(1) as f64
    }

    /// Stall cycles charged to `tag`.
    pub fn stall(&self, tag: AccessTag) -> u64 {
        self.stall_by_tag[tag.index()]
    }

    /// Global load transactions generated by accesses tagged `tag`
    /// (Table 1's `Acc` columns, measured).
    pub fn load_transactions(&self, tag: AccessTag) -> u64 {
        self.load_transactions_by_tag[tag.index()]
    }

    /// The Fig. 1b breakdown: fraction of virtual-function direct-cost
    /// latency from (A) the vTable* load, (B) the vFunc* load (including
    /// the constant indirection), and (C) the indirect call.
    ///
    /// Returns `(a, b, c)` summing to 1.0, or zeros if no dispatch
    /// latency was recorded.
    pub fn dispatch_latency_breakdown(&self) -> (f64, f64, f64) {
        let a = self.stall(AccessTag::VtablePtr) as f64;
        let b = (self.stall(AccessTag::VfuncPtr) + self.stall(AccessTag::ConstIndirection)) as f64;
        let c = self.stall_by_tag[STALL_INDIRECT_CALL] as f64;
        let total = a + b + c;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (a / total, b / total, c / total)
        }
    }
}

impl Stats {
    /// Sums a set of per-kernel (or per-SM partial) counters into one.
    ///
    /// Every field is an exact integer sum, so the merge is associative,
    /// commutative and independent of the order parts were produced in —
    /// the property that lets [`crate::SimPool`] sweeps and the parallel
    /// engine report bit-identical totals to a serial run.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Stats>) -> Stats {
        let mut out = Stats::new();
        for p in parts {
            out += p;
        }
        out
    }
}

impl AddAssign<&Stats> for Stats {
    fn add_assign(&mut self, rhs: &Stats) {
        self.cycles += rhs.cycles;
        self.instrs_mem += rhs.instrs_mem;
        self.instrs_compute += rhs.instrs_compute;
        self.instrs_ctrl += rhs.instrs_ctrl;
        self.global_load_transactions += rhs.global_load_transactions;
        self.global_store_transactions += rhs.global_store_transactions;
        self.l1_accesses += rhs.l1_accesses;
        self.l1_hits += rhs.l1_hits;
        self.l2_accesses += rhs.l2_accesses;
        self.l2_hits += rhs.l2_hits;
        self.dram_accesses += rhs.dram_accesses;
        self.const_accesses += rhs.const_accesses;
        self.const_hits += rhs.const_hits;
        for (d, s) in self.stall_by_tag.iter_mut().zip(rhs.stall_by_tag.iter()) {
            *d += *s;
        }
        for (d, s) in self
            .load_transactions_by_tag
            .iter_mut()
            .zip(rhs.load_transactions_by_tag.iter())
        {
            *d += *s;
        }
        self.warps += rhs.warps;
        self.vfunc_calls += rhs.vfunc_calls;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:                {}", self.cycles)?;
        writeln!(
            f,
            "warp instrs (M/C/X):   {} / {} / {}",
            self.instrs_mem, self.instrs_compute, self.instrs_ctrl
        )?;
        writeln!(
            f,
            "global ld/st transact: {} / {}",
            self.global_load_transactions, self.global_store_transactions
        )?;
        writeln!(
            f,
            "L1 hit rate:           {:.1}%",
            self.l1_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "L2 hit rate:           {:.1}%",
            self.l2_hit_rate() * 100.0
        )?;
        write!(f, "vFuncPKI:              {:.1}", self.vfunc_pki())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_counting() {
        let mut s = Stats::new();
        s.count_instrs(InstrClass::Mem, 2);
        s.count_instrs(InstrClass::Compute, 3);
        s.count_instrs(InstrClass::Ctrl, 1);
        assert_eq!(s.total_instrs(), 6);
    }

    #[test]
    fn hit_rates_guard_zero() {
        let s = Stats::new();
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.vfunc_pki(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.speedup_vs(&Stats::new()), 0.0);
    }

    #[test]
    fn derived_ratio_helpers() {
        let mut s = Stats::new();
        s.cycles = 200;
        s.instrs_mem = 100;
        s.instrs_compute = 250;
        s.instrs_ctrl = 50;
        assert!((s.ipc() - 2.0).abs() < 1e-12);

        let mut base = Stats::new();
        base.cycles = 600;
        assert!((s.speedup_vs(&base) - 3.0).abs() < 1e-12);

        s.global_load_transactions = 90;
        base.global_load_transactions = 30;
        assert!((s.load_transactions_vs(&base) - 3.0).abs() < 1e-12);
        // Zero-traffic baseline clamps to 1 instead of dividing by 0.
        base.global_load_transactions = 0;
        assert!((s.load_transactions_vs(&base) - 90.0).abs() < 1e-12);

        s.vfunc_calls = 30;
        s.load_transactions_by_tag[AccessTag::VtablePtr.index()] = 90;
        assert!((s.load_transactions_per_call(AccessTag::VtablePtr) - 3.0).abs() < 1e-12);
        s.vfunc_calls = 0;
        assert!((s.load_transactions_per_call(AccessTag::VtablePtr) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_normalizes() {
        let mut s = Stats::new();
        s.stall_by_tag[AccessTag::VtablePtr.index()] = 87;
        s.stall_by_tag[AccessTag::VfuncPtr.index()] = 8;
        s.stall_by_tag[STALL_INDIRECT_CALL] = 5;
        let (a, b, c) = s.dispatch_latency_breakdown();
        assert!((a + b + c - 1.0).abs() < 1e-9);
        assert!(a > 0.8);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Stats::new();
        let mut b = Stats::new();
        a.cycles = 10;
        b.cycles = 5;
        b.l1_hits = 3;
        a += &b;
        assert_eq!(a.cycles, 15);
        assert_eq!(a.l1_hits, 3);
    }
}
