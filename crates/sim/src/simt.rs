//! SIMT reconvergence-stack model.
//!
//! GPUs serialize divergent control flow with a per-warp stack of
//! `(active mask, target)` entries (the mechanism NVIDIA patented for
//! indirect branches — paper §9, reference 15). A divergent indirect call
//! partitions the active lanes by branch target, pushes one entry per
//! distinct target, and executes them one at a time; popping the last
//! entry reconverges the warp.
//!
//! [`WarpCtx`](crate::WarpCtx) expresses structured divergence with
//! scoped masks; this module is the explicit model used wherever lanes
//! must be grouped by a runtime value — most importantly virtual-call
//! targets.

use crate::exec::{Lanes, WARP_SIZE};

/// Partitions the active lanes of `mask` by a per-lane key, returning
/// `(key, submask)` pairs ordered by key — the deterministic order in
/// which a SIMT stack would execute the groups.
///
/// Lanes with `None` keys (inactive / no value) are dropped.
///
/// ```
/// use gvf_sim::{lanes_from_fn, simt::partition_by};
/// let keys = lanes_from_fn(|l| Some(l as u32 % 2));
/// let groups = partition_by(u32::MAX, &keys);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].0, 0);
/// assert_eq!((groups[0].1 | groups[1].1), u32::MAX);
/// ```
pub fn partition_by<T: Copy + Ord>(mask: u32, keys: &Lanes<T>) -> Vec<(T, u32)> {
    let mut groups: Vec<(T, u32)> = Vec::new();
    for lane in 0..WARP_SIZE {
        if (mask >> lane) & 1 == 0 {
            continue;
        }
        let Some(k) = keys[lane] else { continue };
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, m)) => *m |= 1 << lane,
            None => groups.push((k, 1 << lane)),
        }
    }
    groups.sort_by_key(|(k, _)| *k);
    groups
}

/// An explicit per-warp reconvergence stack.
///
/// Entries are execution groups still to run at the current divergence
/// point; [`push_divergence`](SimtStack::push_divergence) splits the
/// current mask, [`next_group`](SimtStack::next_group) pops the next
/// group to execute, and the warp has reconverged when the stack returns
/// to its pre-divergence depth.
#[derive(Clone, Debug)]
pub struct SimtStack<T> {
    stack: Vec<(T, u32)>,
    reconverge_mask: u32,
}

impl<T: Copy + Ord> SimtStack<T> {
    /// A stack for a warp whose full active mask is `mask`.
    pub fn new(mask: u32) -> Self {
        SimtStack {
            stack: Vec::new(),
            reconverge_mask: mask,
        }
    }

    /// The mask the warp returns to once every group has executed.
    pub fn reconvergence_mask(&self) -> u32 {
        self.reconverge_mask
    }

    /// Splits the currently active lanes by key, pushing one entry per
    /// distinct target in *reverse* key order so that groups pop in
    /// ascending key order. Returns the number of groups.
    pub fn push_divergence(&mut self, mask: u32, keys: &Lanes<T>) -> usize {
        let groups = partition_by(mask & self.reconverge_mask, keys);
        let n = groups.len();
        for g in groups.into_iter().rev() {
            self.stack.push(g);
        }
        n
    }

    /// Pops the next `(target, mask)` group to execute, or `None` once
    /// the warp has reconverged.
    pub fn next_group(&mut self) -> Option<(T, u32)> {
        self.stack.pop()
    }

    /// Whether the warp is currently diverged.
    pub fn is_diverged(&self) -> bool {
        !self.stack.is_empty()
    }

    /// Outstanding groups (divergence depth at this level).
    pub fn pending_groups(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::lanes_from_fn;

    #[test]
    fn partition_groups_cover_mask_disjointly() {
        let keys = lanes_from_fn(|l| Some((l % 3) as u8));
        let groups = partition_by(u32::MAX, &keys);
        assert_eq!(groups.len(), 3);
        let mut union = 0u32;
        for (_, m) in &groups {
            assert_eq!(union & m, 0, "groups must be disjoint");
            union |= m;
        }
        assert_eq!(union, u32::MAX);
    }

    #[test]
    fn partition_respects_mask_and_none() {
        let keys = lanes_from_fn(|l| (l != 3).then_some(7u8));
        let groups = partition_by(0b1111, &keys);
        assert_eq!(groups, vec![(7u8, 0b0111)]);
    }

    #[test]
    fn partition_orders_by_key() {
        let keys = lanes_from_fn(|l| Some(if l < 16 { 9u32 } else { 2 }));
        let groups = partition_by(u32::MAX, &keys);
        assert_eq!(groups[0].0, 2);
        assert_eq!(groups[1].0, 9);
    }

    #[test]
    fn converged_warp_is_one_group() {
        let keys = lanes_from_fn(|_| Some(42u32));
        assert_eq!(partition_by(u32::MAX, &keys).len(), 1);
    }

    #[test]
    fn stack_executes_groups_in_key_order_then_reconverges() {
        let mut st = SimtStack::new(u32::MAX);
        let keys = lanes_from_fn(|l| Some((l % 2) as u8));
        assert_eq!(st.push_divergence(u32::MAX, &keys), 2);
        assert!(st.is_diverged());
        let (k0, m0) = st.next_group().unwrap();
        let (k1, m1) = st.next_group().unwrap();
        assert!(k0 < k1);
        assert_eq!(m0 | m1, u32::MAX);
        assert_eq!(st.next_group(), None);
        assert!(!st.is_diverged());
        assert_eq!(st.reconvergence_mask(), u32::MAX);
    }

    #[test]
    fn nested_divergence_depth() {
        let mut st = SimtStack::new(u32::MAX);
        let keys = lanes_from_fn(|l| Some((l % 4) as u8));
        st.push_divergence(u32::MAX, &keys);
        assert_eq!(st.pending_groups(), 4);
        let (_, first) = st.next_group().unwrap();
        // Diverge again within the first group.
        let inner = lanes_from_fn(|l| Some((l % 2) as u8));
        st.push_divergence(first, &inner);
        // Inner groups are subsets of the outer group.
        while st.pending_groups() > 3 {
            let (_, m) = st.next_group().unwrap();
            assert_eq!(m & !first, 0);
        }
        assert_eq!(st.pending_groups(), 3);
    }
}
