//! # gvf-sim — a cycle-approximate SIMT GPU timing simulator
//!
//! The GPU substrate for the `gvf` reproduction of *"Judging a Type by
//! Its Pointer"* (ASPLOS 2021). The paper measures on a silicon V100 and
//! on Accel-Sim; this crate replaces both with a trace-driven timing
//! model that captures the mechanisms the paper's results hinge on:
//!
//! - **memory coalescing** — a warp's 32 lane addresses collapse into
//!   unique 32-byte sector transactions, so a *diverged* per-object load
//!   (CUDA's vTable-pointer load, operation A of Fig. 1) costs up to 32
//!   transactions while a *converged* one costs 1;
//! - **sectored L1/L2 caches and DRAM bandwidth**, so thousands of
//!   threads thrash caches and contend for channels;
//! - **latency hiding by multithreading** — warps stall individually on
//!   loads, but other resident warps keep issuing;
//! - **hardware counters** matching the NVProf metrics the paper reports
//!   (warp instruction mix, global load transactions, L1 hit rate) plus
//!   the PC-sampling-style stall attribution behind Fig. 1b.
//!
//! Workloads execute *functionally* through [`WarpCtx`]/[`run_kernel`],
//! producing a [`KernelTrace`] that [`Gpu::execute`] replays for timing.
//!
//! ```
//! use gvf_mem::DeviceMemory;
//! use gvf_sim::{lanes_from_fn, run_kernel, AccessTag, Gpu, GpuConfig};
//!
//! let mut mem = DeviceMemory::with_capacity(1 << 20);
//! let data = mem.reserve(32 * 8, 8);
//! let kernel = run_kernel(&mut mem, 32, |w| {
//!     let addrs = lanes_from_fn(|i| Some(data.offset(i as u64 * 8)));
//!     w.ld(AccessTag::Field, 8, &addrs); // coalesces into 8 sectors
//!     w.alu(4);
//! });
//! let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
//! assert_eq!(stats.global_load_transactions, 8);
//! ```

// Lane-indexed loops over parallel per-lane arrays are the natural way
// to write SIMT-style code; iterator adaptors obscure the lane index.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attrib;
mod cache;
mod config;
mod engine;
mod exec;
pub mod hostperf;
mod instr;
mod pool;
pub mod probe;
pub mod progress;
pub mod simt;
pub mod spans;
mod stats;
pub mod timeline;
mod trace;

pub use attrib::{
    AttribReport, AttributionProbe, LineClass, LogHist, PcLoadStats, LOG_HIST_BUCKETS,
};
pub use cache::{CacheProbe, SectoredCache};
pub use config::GpuConfig;
pub use engine::Gpu;
pub use exec::{lanes_from_fn, lanes_none, run_kernel, Lanes, WarpCtx, WARP_SIZE};
pub use hostperf::{HostPerfSnapshot, PoolTelemetry, SweepTelemetry, WorkerTelemetry};
pub use instr::{AccessTag, InstrClass, LaneAddrs, MemOp, Op, Space, UNKNOWN_CALL_TARGET};
pub use pool::{CellFailure, CellHooks, CellObservation, SimPool};
pub use probe::{
    recording_probe, CallSiteClass, CallSiteStats, CountingProbe, CycleAuditProbe,
    CycleAuditReport, EpochClass, EpochMetricsProbe, EpochSeries, MetricsBucket, NopProbe,
    ObsReport, Probe, ProbeSpec, RecordingProbe, StallCause, CALL_SITE_TARGET_CAP,
    CYCLE_CLASS_LABELS, STALL_CAUSES,
};
pub use spans::{align_exclusive, collapsed_stacks, SpanDelta, SpanStat};
pub use stats::{Stats, STALL_INDIRECT_CALL};
pub use timeline::{
    write_chrome_trace, TimelineProbe, TraceEvent, TraceEventKind, TIMELINE_SCHEMA,
    TIMELINE_SCHEMA_VERSION,
};
pub use trace::{KernelTrace, WarpTrace};
