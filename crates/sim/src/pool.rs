//! Inter-kernel fan-out: run independent simulations concurrently.
//!
//! A figure sweep is embarrassingly parallel — every (workload,
//! strategy, configuration) cell owns its [`crate::Gpu`], device memory
//! and RNG stream, so cells share nothing. [`SimPool::run`] distributes
//! the cells over host threads and returns results **in input order**,
//! which together with each cell's own determinism (see the engine's
//! determinism contract) makes a parallel sweep bit-identical to a
//! serial one.
//!
//! Without the `parallel` crate feature (or with one job) the pool
//! degenerates to a plain in-order loop on the calling thread.
//!
//! [`SimPool::run_timed`] additionally self-measures: per-worker busy
//! and queue-wait time plus the pool's wall time come back as a
//! [`PoolTelemetry`] for the host-performance manifest section. The
//! measurement costs two clock reads per *cell* (each cell is a whole
//! simulation), so it cannot perturb results — and telemetry is
//! host-side only, excluded from the determinism contract.
//!
//! **Fault isolation:** every cell runs under
//! [`std::panic::catch_unwind`], so one panicking cell cannot abort the
//! sweep — [`SimPool::run_indexed`] returns `Result<T, CellFailure>`
//! per cell, the failed cell's panic payload travels in the
//! [`CellFailure`], and every other cell still completes and comes back
//! in input order. The surviving cells' outputs are bit-identical to a
//! failure-free run for any job count (cells share nothing, so a
//! neighbour's death cannot perturb them).

use crate::hostperf::{PoolTelemetry, WorkerTelemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One grid cell's panic, caught by the pool so the rest of the sweep
/// survives. The payload is the panic message (stringified); `index` is
/// the cell's position in the input slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// Input-order index of the cell that panicked.
    pub index: usize,
    /// The panic payload, stringified (`&str`/`String` payloads
    /// verbatim; anything else becomes a placeholder).
    pub payload: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.payload)
    }
}

/// Stringifies a caught panic payload (`&str` and `String` verbatim —
/// the two types `panic!` produces — anything exotic gets a marker).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// What the pool observed about one completed cell, handed to
/// [`CellHooks::finished`]: which worker ran it, how long it waited in
/// the queue (the cursor fetch preceding it), how long it ran, and how
/// it ended. This is host-side scheduling telemetry — wall-clock data
/// that never reaches stdout or the determinism view.
#[derive(Clone, Debug)]
pub struct CellObservation {
    /// Input-order index of the cell.
    pub index: usize,
    /// Id of the worker that ran it (`0..jobs`; always 0 on the serial
    /// path).
    pub worker: usize,
    /// Nanoseconds spent acquiring this cell from the queue.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent running the cell (including a panicking run).
    pub busy_ns: u64,
    /// The panic payload when the cell died, `None` when it completed.
    pub panic: Option<String>,
}

/// Per-cell lifecycle hooks for [`SimPool::run_observed`]. Callbacks
/// fire on the worker thread that runs the cell, in that cell's own
/// order (`started` strictly before its `finished`); cells on different
/// workers interleave arbitrarily. Default bodies make every hook
/// optional.
pub trait CellHooks: Sync {
    /// A worker picked up cell `index`.
    fn started(&self, index: usize, worker: usize) {
        let _ = (index, worker);
    }
    /// A cell completed (or panicked — see
    /// [`CellObservation::panic`]); `done` of `total` cells have
    /// finished so far. Completion order depends on scheduling, so this
    /// is for telemetry and stderr progress only.
    fn finished(&self, obs: &CellObservation, done: usize, total: usize) {
        let _ = (obs, done, total);
    }
}

/// Adapter: the plain `on_done(done, total)` progress callback of
/// [`SimPool::run_timed`] expressed as [`CellHooks`].
struct DoneHook<D>(D);

impl<D: Fn(usize, usize) + Sync> CellHooks for DoneHook<D> {
    fn finished(&self, _obs: &CellObservation, done: usize, total: usize) {
        (self.0)(done, total)
    }
}

/// Runs one cell under `catch_unwind`. `AssertUnwindSafe` is sound here
/// because `f` is `Fn` over shared references: a panicking cell cannot
/// have left partial writes behind in state another cell observes (each
/// cell owns its simulation), and the caller never reuses the closure's
/// captures mutably.
fn run_cell<I, T, F>(f: &F, i: usize, input: &I) -> Result<T, CellFailure>
where
    F: Fn(usize, &I) -> T + Sync,
{
    let _cell = crate::spans::span("pool.cell");
    catch_unwind(AssertUnwindSafe(|| f(i, input))).map_err(|payload| CellFailure {
        index: i,
        payload: payload_string(payload),
    })
}

/// A fixed-size host thread pool for independent simulation jobs.
///
/// ```
/// use gvf_sim::SimPool;
///
/// let squares = SimPool::new(4).run(&[1u64, 2, 3, 4, 5], |&n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimPool {
    jobs: usize,
}

impl SimPool {
    /// Creates a pool running up to `jobs` simulations at once; `0`
    /// picks the machine's available parallelism.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        SimPool { jobs }
    }

    /// The resolved job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every input and returns the outputs in input
    /// order. `f` must be self-contained per input — results are
    /// identical for any job count. A panicking cell re-raises **after**
    /// every other cell has completed (callers that want to survive a
    /// failure use [`run_indexed`](SimPool::run_indexed) and inspect the
    /// per-cell `Result`s).
    pub fn run<I, T, F>(&self, inputs: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_indexed(inputs, |_, input| f(input), |_, _| {})
            .into_iter()
            .map(|r| r.unwrap_or_else(|failure| panic!("{failure}")))
            .collect()
    }

    /// [`run`](SimPool::run) with the cell index passed to `f`, a
    /// completion callback, and per-cell fault isolation: `on_done(done,
    /// total)` fires after each cell finishes (panicked or not), with
    /// the number completed so far. Completion order (and hence the
    /// `done` sequence) depends on scheduling, so the callback is for
    /// stderr progress reporting only — outputs are still returned in
    /// input order, a panicking cell becomes an `Err(CellFailure)` in
    /// its own slot, and the surviving cells are bit-identical for any
    /// job count.
    pub fn run_indexed<I, T, F, D>(
        &self,
        inputs: &[I],
        f: F,
        on_done: D,
    ) -> Vec<Result<T, CellFailure>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        D: Fn(usize, usize) + Sync,
    {
        self.run_timed(inputs, f, on_done).0
    }

    /// [`run_indexed`](SimPool::run_indexed) plus self-measurement: the
    /// returned [`PoolTelemetry`] carries the pool's wall time and each
    /// worker's busy / queue-wait nanoseconds and cell count. Outputs
    /// are unchanged and still bit-identical for any job count; only
    /// the telemetry (which never reaches stdout or the determinism
    /// diff) depends on scheduling.
    pub fn run_timed<I, T, F, D>(
        &self,
        inputs: &[I],
        f: F,
        on_done: D,
    ) -> (Vec<Result<T, CellFailure>>, PoolTelemetry)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        D: Fn(usize, usize) + Sync,
    {
        self.run_observed(inputs, f, &DoneHook(on_done))
    }

    /// [`run_timed`](SimPool::run_timed) with full per-cell lifecycle
    /// hooks ([`CellHooks`]): each cell reports which worker ran it,
    /// its queue wait and duration, and its panic payload if it died —
    /// the substrate of the live-telemetry event stream. Outputs are
    /// unchanged and still bit-identical for any job count.
    pub fn run_observed<I, T, F, H>(
        &self,
        inputs: &[I],
        f: F,
        hooks: &H,
    ) -> (Vec<Result<T, CellFailure>>, PoolTelemetry)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        H: CellHooks,
    {
        let start = Instant::now();
        #[cfg(feature = "parallel")]
        {
            let jobs = self.jobs.min(inputs.len()).max(1);
            if jobs > 1 {
                return run_parallel_observed(inputs, &f, hooks, jobs, start);
            }
        }
        let total = inputs.len();
        let mut worker = WorkerTelemetry::default();
        let out = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                hooks.started(i, 0);
                let cell_start = Instant::now();
                let out = run_cell(&f, i, input);
                let busy_ns = cell_start.elapsed().as_nanos() as u64;
                worker.busy_ns += busy_ns;
                worker.cells += 1;
                hooks.finished(
                    &CellObservation {
                        index: i,
                        worker: 0,
                        queue_wait_ns: 0,
                        busy_ns,
                        panic: out.as_ref().err().map(|e| e.payload.clone()),
                    },
                    i + 1,
                    total,
                );
                out
            })
            .collect();
        let telemetry = PoolTelemetry {
            wall_ns: start.elapsed().as_nanos() as u64,
            jobs: 1,
            workers: vec![worker],
        };
        (out, telemetry)
    }
}

#[cfg(feature = "parallel")]
fn run_parallel_observed<I, T, F, H>(
    inputs: &[I],
    f: &F,
    hooks: &H,
    jobs: usize,
    start: Instant,
) -> (Vec<Result<T, CellFailure>>, PoolTelemetry)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    H: CellHooks,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Work-stealing by atomic cursor: job runtimes vary wildly across a
    // sweep (scaled configs vs. tiny ones), so static chunking would
    // leave threads idle.
    let cursor = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let total = inputs.len();
    // Each worker accumulates its (index, result) pairs locally and
    // hands them back through its join handle, so the cursor and the
    // `done` counter are the only shared words — no per-cell mutex
    // round-trip on the result slots.
    let (per_worker, workers) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let cursor = &cursor;
                let finished = &finished;
                let f = &f;
                // Named threads so live span stacks (the stall
                // watchdog's diagnostics) can say which pool worker is
                // stuck.
                std::thread::Builder::new()
                    .name(format!("pool-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        let mut telemetry = WorkerTelemetry::default();
                        let mut results: Vec<(usize, Result<T, CellFailure>)> = Vec::new();
                        loop {
                            let fetch_start = Instant::now();
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let grabbed = inputs.get(i);
                            let queue_wait_ns = fetch_start.elapsed().as_nanos() as u64;
                            telemetry.queue_wait_ns += queue_wait_ns;
                            let Some(input) = grabbed else { break };
                            hooks.started(i, w);
                            let cell_start = Instant::now();
                            let out = run_cell(f, i, input);
                            let busy_ns = cell_start.elapsed().as_nanos() as u64;
                            telemetry.busy_ns += busy_ns;
                            telemetry.cells += 1;
                            let panic = out.as_ref().err().map(|e| e.payload.clone());
                            results.push((i, out));
                            let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
                            hooks.finished(
                                &CellObservation {
                                    index: i,
                                    worker: w,
                                    queue_wait_ns,
                                    busy_ns,
                                    panic,
                                },
                                done,
                                total,
                            );
                        }
                        (results, telemetry)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        let mut per_worker = Vec::with_capacity(jobs);
        let mut workers = Vec::with_capacity(jobs);
        for handle in handles {
            // A panic here is a bug in the hooks (cell panics are
            // caught by `run_cell`); propagate it like the scope would.
            let (results, telemetry) = handle.join().expect("pool worker panicked");
            per_worker.push(results);
            workers.push(telemetry);
        }
        (per_worker, workers)
    });
    let mut slots: Vec<Option<Result<T, CellFailure>>> = (0..total).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} ran twice");
        slots[i] = Some(r);
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect();
    let telemetry = PoolTelemetry {
        wall_ns: start.elapsed().as_nanos() as u64,
        jobs,
        workers,
    };
    (out, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = SimPool::new(4).run(&inputs, |&i| i * 3);
        assert_eq!(out, inputs.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_means_auto() {
        assert!(SimPool::new(0).jobs() >= 1);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..37).collect();
        let f = |&n: &u64| n.wrapping_mul(0x9e37_79b9).rotate_left(13);
        assert_eq!(
            SimPool::new(1).run(&inputs, f),
            SimPool::new(8).run(&inputs, f)
        );
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = SimPool::new(4).run(&[], |&n: &u64| n);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_inputs() {
        let out = SimPool::new(64).run(&[1, 2], |&n: &i32| n + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn run_timed_accounts_every_cell_to_a_worker() {
        for jobs in [1, 4] {
            let inputs: Vec<u64> = (0..41).collect();
            let (out, telemetry) = SimPool::new(jobs).run_timed(
                &inputs,
                |_, &n| {
                    // Do a little real work so busy time is non-zero.
                    (0..200u64).fold(n, |a, b| a.wrapping_mul(31).wrapping_add(b))
                },
                |_, _| {},
            );
            assert_eq!(out.len(), 41);
            assert_eq!(telemetry.workers.len(), telemetry.jobs);
            let cells: u64 = telemetry.workers.iter().map(|w| w.cells).sum();
            assert_eq!(cells, 41, "every cell attributed to exactly one worker");
            let busy: u64 = telemetry.workers.iter().map(|w| w.busy_ns).sum();
            assert!(busy > 0);
        }
    }

    #[test]
    fn run_indexed_passes_indices_and_reports_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for jobs in [1, 4] {
            let inputs: Vec<u64> = (0..23).collect();
            let calls = AtomicUsize::new(0);
            let out = SimPool::new(jobs).run_indexed(
                &inputs,
                |i, &n| (i as u64) * 100 + n,
                |done, total| {
                    assert!(done >= 1 && done <= total);
                    assert_eq!(total, 23);
                    calls.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(calls.load(Ordering::Relaxed), 23);
            let expect: Vec<u64> = (0..23).map(|i| i * 100 + i).collect();
            let out: Vec<u64> = out.into_iter().map(|r| r.expect("no panics")).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn panicking_cell_is_isolated_for_any_job_count() {
        for jobs in [1, 4] {
            let inputs: Vec<u64> = (0..17).collect();
            let out = SimPool::new(jobs).run_indexed(
                &inputs,
                |_, &n| {
                    assert!(n != 5, "cell five dies");
                    n * 2
                },
                |_, _| {},
            );
            assert_eq!(out.len(), 17);
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let failure = r.as_ref().expect_err("cell 5 panicked");
                    assert_eq!(failure.index, 5);
                    assert!(failure.payload.contains("cell five dies"));
                } else {
                    assert_eq!(*r.as_ref().expect("survivor"), i as u64 * 2);
                }
            }
        }
    }

    #[test]
    fn failed_cells_still_count_toward_progress_and_telemetry() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for jobs in [1, 3] {
            let inputs: Vec<u64> = (0..9).collect();
            let calls = AtomicUsize::new(0);
            let (out, telemetry) = SimPool::new(jobs).run_timed(
                &inputs,
                |_, &n| {
                    assert!(n % 2 == 0, "odd cell");
                    n
                },
                |_, _| {
                    calls.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(calls.load(Ordering::Relaxed), 9);
            assert_eq!(out.iter().filter(|r| r.is_err()).count(), 4);
            let cells: u64 = telemetry.workers.iter().map(|w| w.cells).sum();
            assert_eq!(cells, 9, "failed cells are still attributed to a worker");
        }
    }

    #[test]
    fn run_observed_reports_worker_lifecycle_per_cell() {
        use std::sync::Mutex;

        struct Capture {
            started: Mutex<Vec<(usize, usize)>>,
            finished: Mutex<Vec<CellObservation>>,
        }
        impl CellHooks for Capture {
            fn started(&self, index: usize, worker: usize) {
                self.started.lock().unwrap().push((index, worker));
            }
            fn finished(&self, obs: &CellObservation, done: usize, total: usize) {
                assert!(done >= 1 && done <= total);
                self.finished.lock().unwrap().push(obs.clone());
            }
        }

        for jobs in [1, 4] {
            let inputs: Vec<u64> = (0..19).collect();
            let capture = Capture {
                started: Mutex::new(Vec::new()),
                finished: Mutex::new(Vec::new()),
            };
            let (out, telemetry) = SimPool::new(jobs).run_observed(
                &inputs,
                |_, &n| {
                    assert!(n != 7, "seven dies");
                    n
                },
                &capture,
            );
            assert_eq!(out.len(), 19);
            let started = capture.started.into_inner().unwrap();
            let mut finished = capture.finished.into_inner().unwrap();
            assert_eq!(started.len(), 19);
            assert_eq!(finished.len(), 19);
            finished.sort_by_key(|o| o.index);
            let resolved_jobs = telemetry.jobs;
            for (i, obs) in finished.iter().enumerate() {
                assert_eq!(obs.index, i, "every cell observed exactly once");
                assert!(obs.worker < resolved_jobs);
                assert!(
                    started.contains(&(i, obs.worker)),
                    "cell {i} started on the worker that finished it"
                );
                assert_eq!(obs.panic.is_some(), i == 7);
            }
            assert!(finished[7].panic.as_deref().unwrap().contains("seven dies"));
            // The hooks' per-cell accounting reconciles with the
            // aggregate worker telemetry.
            let hook_busy: u64 = finished.iter().map(|o| o.busy_ns).sum();
            let agg_busy: u64 = telemetry.workers.iter().map(|w| w.busy_ns).sum();
            assert!(hook_busy <= agg_busy + 19);
        }
    }

    #[test]
    #[should_panic(expected = "cell 1 panicked")]
    fn run_repanics_on_cell_failure() {
        SimPool::new(1).run(&[1u64, 2, 3], |&n| {
            assert!(n != 2, "two is right out");
            n
        });
    }
}
