//! Mechanism attribution: per-PC access evidence from the caches.
//!
//! The probes in [`crate::probe`] see the pipeline (stalls, IPC over
//! time); this module sees the *mechanisms* the paper's figures are
//! explained by. An [`AttributionProbe`] listens to the engine's
//! per-instruction and per-sector hooks and accumulates, per SM:
//!
//! - **per-PC load attribution** — for every `(trace position, access
//!   tag)` pair: instructions issued, lanes participating, sector
//!   transactions generated and L1 hits. Transactions-per-instruction
//!   is the paper's "loads per virtual call" evidence; lanes per
//!   transaction is coalescing efficiency (32 = perfectly converged,
//!   1 = fully diverged).
//! - **per-set L1 contention** — accesses and hits per cache set, plus
//!   a final-occupancy snapshot (valid sectors per set at the end of
//!   the run), showing whether vtable/lookup lines concentrate in a
//!   few hot sets.
//! - **reuse-interval histograms** per line class (vtable metadata vs.
//!   range-lookup vs. object data), measuring, for each re-access of a
//!   cache line, how many L1 sector accesses happened on that SM since
//!   the line was last touched. Short intervals explain why converged
//!   structures hit in L1 (§5); first-ever touches are counted
//!   separately as cold accesses.
//!
//! Everything is an exact integer counter or a [`LogHist`], so per-SM
//! reports merge associatively and the merged whole-GPU report is
//! byte-identical for any host thread count — attribution inherits the
//! engine's determinism contract just like the other probes.

use crate::cache::SectoredCache;
use crate::instr::AccessTag;
use crate::probe::Probe;
use std::collections::{BTreeMap, HashMap};

/// Number of buckets in a [`LogHist`]: one for zero, one per power of
/// two up to `2^32`, and one overflow bucket for everything larger.
pub const LOG_HIST_BUCKETS: usize = 35;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts the value `0`; bucket `k` (for `1 <= k <= 33`)
/// counts values in `[2^(k-1), 2^k)`; the last bucket counts values
/// `>= 2^33`. Merging is element-wise addition, so it is associative
/// and commutative — the property the determinism suite checks.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LogHist {
    counts: [u64; LOG_HIST_BUCKETS],
}

impl LogHist {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHist {
            counts: [0; LOG_HIST_BUCKETS],
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(LOG_HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i` (`0`, then `2^(i-1)`).
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::bucket_of(value)] += n;
    }

    /// Element-wise addition of `other`.
    pub fn merge(&mut self, other: &LogHist) {
        for (d, s) in self.counts.iter_mut().zip(other.counts.iter()) {
            *d += *s;
        }
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The raw bucket counts, in [`bucket_lo`](Self::bucket_lo) order.
    pub fn counts(&self) -> &[u64; LOG_HIST_BUCKETS] {
        &self.counts
    }

    /// Rebuild a histogram from raw bucket counts (the inverse of
    /// [`LogHist::counts`]); used when decoding persisted attribution data.
    pub const fn from_counts(counts: [u64; LOG_HIST_BUCKETS]) -> Self {
        LogHist { counts }
    }
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print only the populated buckets; 35 mostly-zero entries
        // drown test failure output otherwise.
        let mut m = f.debug_map();
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                m.entry(&Self::bucket_lo(i), &c);
            }
        }
        m.finish()
    }
}

/// The cache-line classes reuse intervals are attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineClass {
    /// vTable metadata: the embedded vTable pointer, vFunc-pointer slots
    /// and Concord's type tags (also constant-table indirections, which
    /// normally stay in the constant cache).
    Vtable,
    /// COAL's range-lookup structures (segment-tree nodes and leaves,
    /// linear-table entries).
    Lookup,
    /// Object member data (and untyped traffic).
    Object,
}

/// Number of [`LineClass`] values (array sizing).
pub const LINE_CLASSES: usize = 3;

impl LineClass {
    /// Every class, in [`index`](Self::index) order.
    pub const ALL: [LineClass; LINE_CLASSES] =
        [LineClass::Vtable, LineClass::Lookup, LineClass::Object];

    /// Compact index for array storage.
    pub const fn index(self) -> usize {
        match self {
            LineClass::Vtable => 0,
            LineClass::Lookup => 1,
            LineClass::Object => 2,
        }
    }

    /// Short machine-readable label (attribution schema field).
    pub fn label(self) -> &'static str {
        match self {
            LineClass::Vtable => "vtable",
            LineClass::Lookup => "lookup",
            LineClass::Object => "object",
        }
    }

    /// The class an access tag's lines belong to.
    pub fn of(tag: AccessTag) -> LineClass {
        match tag {
            AccessTag::VtablePtr
            | AccessTag::VfuncPtr
            | AccessTag::TypeTag
            | AccessTag::ConstIndirection => LineClass::Vtable,
            AccessTag::RangeWalk => LineClass::Lookup,
            AccessTag::Field | AccessTag::Other => LineClass::Object,
        }
    }
}

/// Accumulated load evidence for one `(trace position, tag)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcLoadStats {
    /// Dynamic load instructions issued at this PC.
    pub instructions: u64,
    /// Lanes that participated (sum over instructions).
    pub lanes: u64,
    /// Coalesced sector transactions generated (sums to the matching
    /// [`crate::Stats::load_transactions_by_tag`] slot — the hard
    /// cross-check invariant).
    pub transactions: u64,
    /// Transactions that hit in L1.
    pub l1_hits: u64,
}

impl PcLoadStats {
    fn merge(&mut self, other: &PcLoadStats) {
        self.instructions += other.instructions;
        self.lanes += other.lanes;
        self.transactions += other.transactions;
        self.l1_hits += other.l1_hits;
    }
}

/// The merged attribution evidence of a run (or of one SM before
/// merging). All fields are exact integers, so [`merge`](Self::merge)
/// is associative and commutative and the whole-GPU report is
/// independent of host thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttribReport {
    /// Per-`(trace position, tag index)` load attribution, in
    /// deterministic key order.
    pub per_pc: BTreeMap<(usize, usize), PcLoadStats>,
    /// L1 accesses per cache set, summed over SMs (contention evidence;
    /// index = set).
    pub set_accesses: Vec<u64>,
    /// L1 hits per cache set, summed over SMs.
    pub set_hits: Vec<u64>,
    /// Valid sectors per L1 set at the end of the run, summed over SMs
    /// (occupancy snapshot).
    pub final_set_sectors: Vec<u64>,
    /// Reuse-interval histogram per [`LineClass`]: L1 sector accesses
    /// on the same SM between touches of the same cache line.
    pub reuse: [LogHist; LINE_CLASSES],
    /// First-ever touches of a line per [`LineClass`] (cold accesses,
    /// excluded from the interval histograms).
    pub cold_lines: [u64; LINE_CLASSES],
    /// Number of per-SM reports merged in.
    pub sms: u64,
}

fn add_at(v: &mut Vec<u64>, idx: usize, amount: u64) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
    v[idx] += amount;
}

impl AttribReport {
    /// Folds `other` in (element-wise addition everywhere).
    pub fn merge(&mut self, other: &AttribReport) {
        for (k, s) in &other.per_pc {
            self.per_pc.entry(*k).or_default().merge(s);
        }
        for (i, &a) in other.set_accesses.iter().enumerate() {
            add_at(&mut self.set_accesses, i, a);
        }
        for (i, &h) in other.set_hits.iter().enumerate() {
            add_at(&mut self.set_hits, i, h);
        }
        for (i, &s) in other.final_set_sectors.iter().enumerate() {
            add_at(&mut self.final_set_sectors, i, s);
        }
        for (d, s) in self.reuse.iter_mut().zip(other.reuse.iter()) {
            d.merge(s);
        }
        for (d, s) in self.cold_lines.iter_mut().zip(other.cold_lines.iter()) {
            *d += *s;
        }
        self.sms += other.sms;
    }

    /// Total sector transactions attributed to `tag` across all PCs —
    /// must equal the matching [`crate::Stats`] load-transaction
    /// counter (the cross-check the report enforces).
    pub fn transactions_by_tag(&self, tag: AccessTag) -> u64 {
        let idx = tag.index();
        self.per_pc
            .iter()
            .filter(|((_, t), _)| *t == idx)
            .map(|(_, s)| s.transactions)
            .sum()
    }

    /// Sums `(instructions, lanes, transactions, l1_hits)` for `tag`.
    pub fn totals_by_tag(&self, tag: AccessTag) -> PcLoadStats {
        let idx = tag.index();
        let mut out = PcLoadStats::default();
        for ((_, t), s) in &self.per_pc {
            if *t == idx {
                out.merge(s);
            }
        }
        out
    }

    /// `true` when nothing was recorded (not even an SM report).
    pub fn is_empty(&self) -> bool {
        *self == AttribReport::default()
    }
}

/// Per-SM probe accumulating the evidence of an [`AttribReport`].
///
/// Costs a handful of counter updates per load instruction and a hash
/// lookup per sector — cheap enough to enable on every grid cell, and,
/// like every probe, invisible to timing: [`crate::Stats`] and stdout
/// are byte-identical with or without it.
#[derive(Clone, Debug, Default)]
pub struct AttributionProbe {
    report: AttribReport,
    /// Line address -> index of the last sector access that touched it
    /// (for reuse intervals, measured in sector accesses on this SM).
    last_touch: HashMap<u64, u64>,
    accesses: u64,
}

impl AttributionProbe {
    /// A fresh probe for one SM.
    pub fn new() -> Self {
        AttributionProbe {
            report: AttribReport {
                sms: 1,
                ..AttribReport::default()
            },
            last_touch: HashMap::new(),
            accesses: 0,
        }
    }

    /// The evidence recorded so far.
    pub fn report(&self) -> &AttribReport {
        &self.report
    }

    /// Consumes the probe, returning its report.
    pub fn into_report(self) -> AttribReport {
        self.report
    }
}

impl Probe for AttributionProbe {
    fn load_coalesced(
        &mut self,
        _cycle: u64,
        pc: usize,
        tag: AccessTag,
        lanes: u64,
        _sectors: u64,
    ) {
        let e = self.report.per_pc.entry((pc, tag.index())).or_default();
        e.instructions += 1;
        e.lanes += lanes;
    }

    fn l1_sector(
        &mut self,
        _cycle: u64,
        pc: usize,
        tag: AccessTag,
        line_addr: u64,
        set: usize,
        hit: bool,
    ) {
        let e = self.report.per_pc.entry((pc, tag.index())).or_default();
        e.transactions += 1;
        e.l1_hits += hit as u64;
        add_at(&mut self.report.set_accesses, set, 1);
        add_at(&mut self.report.set_hits, set, hit as u64);
        let class = LineClass::of(tag).index();
        match self.last_touch.insert(line_addr, self.accesses) {
            Some(prev) => self.report.reuse[class].record(self.accesses - prev),
            None => self.report.cold_lines[class] += 1,
        }
        self.accesses += 1;
    }

    fn cache_final(&mut self, l1: &SectoredCache) {
        let occ = l1.per_set_valid_sectors();
        for (i, &s) in occ.iter().enumerate() {
            add_at(&mut self.report.final_set_sectors, i, s as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_hist_bucket_boundaries() {
        assert_eq!(LogHist::bucket_of(0), 0);
        assert_eq!(LogHist::bucket_of(1), 1);
        assert_eq!(LogHist::bucket_of(2), 2);
        assert_eq!(LogHist::bucket_of(3), 2);
        assert_eq!(LogHist::bucket_of(4), 3);
        assert_eq!(LogHist::bucket_of(u64::MAX), LOG_HIST_BUCKETS - 1);
        for i in 1..LOG_HIST_BUCKETS - 1 {
            assert_eq!(LogHist::bucket_of(LogHist::bucket_lo(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn log_hist_counts_and_merges() {
        let mut a = LogHist::new();
        a.record(0);
        a.record_n(5, 3);
        let mut b = LogHist::new();
        b.record(1u64 << 40);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.total(), 5);
        assert!(!ab.is_empty());
        assert_eq!(ab.counts()[LOG_HIST_BUCKETS - 1], 1, "overflow bucket");
    }

    #[test]
    fn line_classes_cover_all_tags() {
        for tag in AccessTag::ALL {
            let c = LineClass::of(tag);
            assert!(c.index() < LINE_CLASSES);
            assert_eq!(LineClass::ALL[c.index()], c);
        }
        assert_eq!(LineClass::of(AccessTag::VtablePtr), LineClass::Vtable);
        assert_eq!(LineClass::of(AccessTag::RangeWalk), LineClass::Lookup);
        assert_eq!(LineClass::of(AccessTag::Field), LineClass::Object);
    }

    #[test]
    fn probe_attributes_loads_and_reuse() {
        let mut p = AttributionProbe::new();
        p.load_coalesced(0, 7, AccessTag::VtablePtr, 32, 2);
        p.l1_sector(0, 7, AccessTag::VtablePtr, 0x100, 2, false);
        p.l1_sector(0, 7, AccessTag::VtablePtr, 0x100, 2, true);
        p.l1_sector(1, 9, AccessTag::Field, 0x200, 4, false);
        let r = p.report();
        let vt = r.per_pc[&(7, AccessTag::VtablePtr.index())];
        assert_eq!(vt.instructions, 1);
        assert_eq!(vt.lanes, 32);
        assert_eq!(vt.transactions, 2);
        assert_eq!(vt.l1_hits, 1);
        assert_eq!(r.transactions_by_tag(AccessTag::VtablePtr), 2);
        assert_eq!(r.transactions_by_tag(AccessTag::Field), 1);
        assert_eq!(r.set_accesses[2], 2);
        assert_eq!(r.set_hits[2], 1);
        // Line 0x100 was touched twice: one cold touch, one reuse at
        // interval 1. Line 0x200: cold.
        assert_eq!(r.cold_lines[LineClass::Vtable.index()], 1);
        assert_eq!(r.cold_lines[LineClass::Object.index()], 1);
        assert_eq!(r.reuse[LineClass::Vtable.index()].total(), 1);
    }

    #[test]
    fn report_merge_is_commutative_and_order_free() {
        let mk = |pc: usize, set: usize| {
            let mut p = AttributionProbe::new();
            p.load_coalesced(0, pc, AccessTag::Field, 4, 1);
            p.l1_sector(0, pc, AccessTag::Field, pc as u64 * 64, set, pc % 2 == 0);
            p.into_report()
        };
        let (a, b, c) = (mk(1, 0), mk(2, 3), mk(3, 1));
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
        assert_eq!(abc.sms, 3);
    }

    #[test]
    fn cache_final_snapshots_occupancy() {
        let mut l1 = SectoredCache::new(512, 2, 128, 32);
        l1.access(0x0);
        l1.access(0x20);
        l1.access(0x80);
        let mut p = AttributionProbe::new();
        p.cache_final(&l1);
        let r = p.report();
        assert_eq!(r.final_set_sectors[0], 2);
        assert_eq!(r.final_set_sectors[1], 1);
    }
}
