//! Fault-isolation property tests for [`SimPool`].
//!
//! These run in their own integration-test binary because they install a
//! silent panic hook for the whole process: the deliberately panicking
//! cells below would otherwise spray backtraces over the test output.

use gvf_prop::props;
use gvf_sim::{CellFailure, SimPool};

fn silence_panics() {
    // Caught panics still invoke the global hook; keep the test output
    // clean. Installing per-test races with parallel test threads, so the
    // hook is process-wide and installed once.
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// A sweep containing one deliberately panicking cell still returns every
/// other cell's result, in input order, byte-identical for any job count;
/// the dead cell surfaces as exactly one [`CellFailure`] carrying its
/// index and payload.
#[test]
fn panicking_cell_is_isolated_and_deterministic() {
    silence_panics();
    props!(32, |rng| {
        let n = rng.range_usize(1, 40);
        let bad = rng.range_usize(0, n);
        let inputs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let cell = |i: usize, &input: &u64| -> u64 {
            assert!(i != bad, "cell {i} told to die");
            // Arbitrary deterministic work.
            input.wrapping_mul(0x9e37_79b9).rotate_left((i % 63) as u32)
        };

        // Serial run is the reference.
        let reference = SimPool::new(1).run_indexed(&inputs, cell, |_, _| {});
        for jobs in [2usize, 4, 8] {
            let out = SimPool::new(jobs).run_indexed(&inputs, cell, |_, _| {});
            assert_eq!(out.len(), n);
            let failures: Vec<&CellFailure> = out.iter().filter_map(|r| r.as_ref().err()).collect();
            assert_eq!(failures.len(), 1, "exactly one failure");
            assert_eq!(failures[0].index, bad);
            assert!(failures[0].payload.contains("told to die"));
            // Surviving cells agree with the serial reference, in order.
            for (i, (r, reference)) in out.iter().zip(&reference).enumerate() {
                if i != bad {
                    assert_eq!(
                        r.as_ref().expect("survivor"),
                        reference.as_ref().expect("serial survivor"),
                        "cell {i} with --jobs {jobs}"
                    );
                }
            }
        }
    });
}

/// All-panicking and no-panicking edge cases round-trip through the pool.
#[test]
fn failure_edge_cases() {
    silence_panics();
    let inputs: Vec<u64> = (0..7).collect();
    let out = SimPool::new(3).run_indexed(&inputs, |i, _| -> u64 { panic!("cell {i}") }, |_, _| {});
    assert!(out.iter().all(|r| r.is_err()));
    for (i, r) in out.iter().enumerate() {
        let f = r.as_ref().unwrap_err();
        assert_eq!(f.index, i);
        assert_eq!(f.payload, format!("cell {i}"));
        assert_eq!(f.to_string(), format!("cell {i} panicked: cell {i}"));
    }

    let ok = SimPool::new(3).run_indexed(&inputs, |_, &v| v + 1, |_, _| {});
    assert!(ok.iter().all(|r| r.is_ok()));
}
