//! Steady-state allocation audit for the timing engine.
//!
//! The per-epoch loop (schedulers, coalescing, MSHR bookkeeping, phase
//! B) must not touch the heap: every buffer is either sized at setup or
//! reaches its high-water mark within the first few epochs. The test
//! pins that property with a counting global allocator — a long kernel
//! and a short kernel with the same per-epoch structure must cost the
//! engine *exactly* the same number of allocations, i.e. the marginal
//! allocation cost of an epoch is zero.

use gvf_sim::{AccessTag, Gpu, GpuConfig, KernelTrace, MemOp, Op, Space, WarpTrace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation path
/// that can hand out a new block (alloc, alloc_zeroed, realloc).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A kernel of `reps` identical rounds per warp: loads that hit and
/// miss, a diverged store, constant traffic and ALU work — every hot
/// path the epoch loop has. More rounds means more epochs with the
/// same per-epoch structure.
fn kernel(warps: usize, reps: usize) -> KernelTrace {
    let mk = |wi: usize| {
        let mut w = WarpTrace::new();
        for k in 0..reps {
            w.push(Op::Alu(3));
            let addrs: Vec<u64> = (0..32)
                .map(|l| ((wi * 64 + (k % 7) * 8 + l) as u64) * 32)
                .collect();
            w.push(Op::Mem(MemOp {
                space: Space::Global,
                is_store: false,
                width: 8,
                mask: u32::MAX,
                addrs: addrs.into(),
                tag: AccessTag::VtablePtr,
            }));
            w.push(Op::IndirectCall { target: 0 });
            w.push(Op::Mem(MemOp {
                space: Space::Global,
                is_store: true,
                width: 4,
                mask: u32::MAX,
                addrs: (0..32u64)
                    .map(|l| 0x40_0000 + (wi as u64 * 32 + l) * 4)
                    .collect::<Vec<_>>()
                    .into(),
                tag: AccessTag::Other,
            }));
            w.push(Op::Mem(MemOp {
                space: Space::Const,
                is_store: false,
                width: 8,
                mask: u32::MAX,
                addrs: vec![0x100 + (k as u64 % 4) * 64; 32].into(),
                tag: AccessTag::ConstIndirection,
            }));
        }
        w
    };
    KernelTrace {
        warps: (0..warps).map(mk).collect(),
    }
}

#[test]
fn epoch_loop_is_allocation_free() {
    let gpu = Gpu::new(GpuConfig::small()).with_threads(1);
    let short = kernel(40, 8);
    let long = kernel(40, 32);
    // Warm-up: let lazy one-time allocations (rayon-free, but e.g.
    // stdio locks or TLS inits) happen outside the measured windows.
    gpu.execute_serial(&short);
    let a_short = allocs_during(|| {
        gpu.execute_serial(&short);
    });
    let a_long = allocs_during(|| {
        gpu.execute_serial(&long);
    });
    // 4× the epochs, identical per-epoch structure: any marginal
    // allocation per epoch would show up as a_long > a_short.
    assert_eq!(
        a_long, a_short,
        "per-epoch allocation detected: long run cost {a_long} allocations, short run {a_short}"
    );
    // Sanity: the longer kernel really did simulate more cycles.
    let s = gpu.execute_serial(&short);
    let l = gpu.execute_serial(&long);
    assert!(l.cycles > s.cycles);
}
