//! Property tests for the simulator's structural invariants.

use gvf_mem::DeviceMemory;
use gvf_sim::{
    lanes_from_fn, run_kernel, AccessTag, Gpu, GpuConfig, KernelTrace, MemOp, Op, Space,
    SectoredCache, WarpTrace,
};
use proptest::prelude::*;

fn mem_op(addrs: Vec<u64>, tag: AccessTag) -> Op {
    let mask = if addrs.len() >= 32 {
        u32::MAX
    } else {
        (1u32 << addrs.len()) - 1
    };
    Op::Mem(MemOp {
        space: Space::Global,
        is_store: false,
        width: 8,
        mask,
        addrs: addrs.into_boxed_slice(),
        tag,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coalescing: transactions per load are between 1 and the lane
    /// count, and equal the number of distinct sectors.
    #[test]
    fn coalescer_counts_distinct_sectors(addrs in proptest::collection::vec(0u64..1_000_000, 1..32)) {
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 32).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut w = WarpTrace::new();
        w.push(mem_op(addrs.clone(), AccessTag::Field));
        let s = Gpu::new(GpuConfig::small()).execute(&KernelTrace { warps: vec![w] });
        prop_assert_eq!(s.global_load_transactions, distinct.len() as u64);
        prop_assert!(s.global_load_transactions >= 1);
        prop_assert!(s.global_load_transactions <= addrs.len() as u64);
    }

    /// Monotonicity: appending work never reduces simulated cycles, and
    /// cycles are always positive for non-empty kernels.
    #[test]
    fn more_work_never_faster(n_alu in 1u16..200, extra in 1u16..200) {
        let mk = |n: u16| {
            let mut w = WarpTrace::new();
            w.push(Op::Alu(n));
            Gpu::new(GpuConfig::small()).execute(&KernelTrace { warps: vec![w] }).cycles
        };
        let a = mk(n_alu);
        let b = mk(n_alu + extra);
        prop_assert!(a > 0);
        prop_assert!(b >= a);
    }

    /// Instruction accounting: the engine reports exactly the dynamic
    /// instructions present in the trace, for any op mix.
    #[test]
    fn instruction_accounting_exact(ops in proptest::collection::vec(0usize..5, 1..64)) {
        let mut w = WarpTrace::new();
        let mut expect = 0u64;
        for (i, k) in ops.iter().enumerate() {
            match k {
                0 => { w.push(Op::Alu(3)); expect += 3; }
                1 => { w.push(Op::Branch); expect += 1; }
                2 => { w.push(mem_op(vec![i as u64 * 64], AccessTag::Other)); expect += 1; }
                3 => { w.push(Op::IndirectCall); expect += 1; }
                _ => { w.push(Op::Ret); expect += 1; }
            }
        }
        let s = Gpu::new(GpuConfig::small()).execute(&KernelTrace { warps: vec![w.clone()] });
        prop_assert_eq!(s.total_instrs(), expect);
        prop_assert_eq!(s.total_instrs(), w.dyn_instrs());
    }

    /// The cache never reports more hits than accesses, regardless of
    /// the access stream.
    #[test]
    fn cache_hits_bounded(stream in proptest::collection::vec(0u64..4096, 1..512)) {
        let mut c = SectoredCache::new(1024, 2, 128, 32);
        for a in stream {
            c.access(a);
        }
        prop_assert!(c.hits() + c.misses() > 0);
        prop_assert!(c.hit_rate() <= 1.0);
        // Re-touching the same address immediately must hit.
        c.access(12345);
        let h = c.hits();
        c.access(12345);
        prop_assert_eq!(c.hits(), h + 1);
    }

    /// Functional layer: masked stores only write active lanes,
    /// whatever the mask.
    #[test]
    fn masked_stores_respect_mask(mask in 1u32..=u32::MAX) {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let base = mem.reserve(256, 8);
        run_kernel(&mut mem, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 8)));
            let vals = lanes_from_fn(|_| Some(7u64));
            w.with_mask(mask, |w| w.st(AccessTag::Other, 8, &addrs, &vals));
        });
        for i in 0..32 {
            let v = mem.read_u64(base.offset(i as u64 * 8)).unwrap();
            let expect = if (mask >> i) & 1 == 1 { 7 } else { 0 };
            prop_assert_eq!(v, expect, "lane {}", i);
        }
    }
}
