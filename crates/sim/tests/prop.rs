//! Property tests for the simulator's structural invariants (on the
//! in-repo `gvf-prop` harness; the workspace builds offline).

use gvf_mem::DeviceMemory;
use gvf_prop::{gen, props, Rng};
use gvf_sim::{
    lanes_from_fn, run_kernel, AccessTag, Gpu, GpuConfig, KernelTrace, MemOp, Op, SectoredCache,
    SimPool, Space, Stats, WarpTrace,
};

fn mem_op(addrs: Vec<u64>, tag: AccessTag) -> Op {
    let mask = if addrs.len() >= 32 {
        u32::MAX
    } else {
        (1u32 << addrs.len()) - 1
    };
    Op::Mem(MemOp {
        space: Space::Global,
        is_store: false,
        width: 8,
        mask,
        addrs: addrs.into(),
        tag,
    })
}

/// Coalescing: transactions per load are between 1 and the lane count,
/// and equal the number of distinct sectors.
#[test]
fn coalescer_counts_distinct_sectors() {
    props!(48, |rng| {
        let addrs = gen::vec(gen::range_u64(0, 1_000_000), 1..32)(rng);
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 32).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut w = WarpTrace::new();
        w.push(mem_op(addrs.clone(), AccessTag::Field));
        let s = Gpu::new(GpuConfig::small()).execute(&KernelTrace { warps: vec![w] });
        assert_eq!(s.global_load_transactions, distinct.len() as u64);
        assert!(s.global_load_transactions >= 1);
        assert!(s.global_load_transactions <= addrs.len() as u64);
    });
}

/// Monotonicity: appending work never reduces simulated cycles, and
/// cycles are always positive for non-empty kernels.
#[test]
fn more_work_never_faster() {
    props!(48, |rng| {
        let n_alu = rng.range_u64(1, 200) as u16;
        let extra = rng.range_u64(1, 200) as u16;
        let mk = |n: u16| {
            let mut w = WarpTrace::new();
            w.push(Op::Alu(n));
            Gpu::new(GpuConfig::small())
                .execute(&KernelTrace { warps: vec![w] })
                .cycles
        };
        let a = mk(n_alu);
        let b = mk(n_alu + extra);
        assert!(a > 0);
        assert!(b >= a);
    });
}

/// Instruction accounting: the engine reports exactly the dynamic
/// instructions present in the trace, for any op mix.
#[test]
fn instruction_accounting_exact() {
    props!(48, |rng| {
        let ops = gen::vec(gen::range_usize(0, 5), 1..64)(rng);
        let mut w = WarpTrace::new();
        let mut expect = 0u64;
        for (i, k) in ops.iter().enumerate() {
            match k {
                0 => {
                    w.push(Op::Alu(3));
                    expect += 3;
                }
                1 => {
                    w.push(Op::Branch);
                    expect += 1;
                }
                2 => {
                    w.push(mem_op(vec![i as u64 * 64], AccessTag::Other));
                    expect += 1;
                }
                3 => {
                    w.push(Op::IndirectCall { target: 0 });
                    expect += 1;
                }
                _ => {
                    w.push(Op::Ret);
                    expect += 1;
                }
            }
        }
        let s = Gpu::new(GpuConfig::small()).execute(&KernelTrace {
            warps: vec![w.clone()],
        });
        assert_eq!(s.total_instrs(), expect);
        assert_eq!(s.total_instrs(), w.dyn_instrs());
    });
}

/// The cache never reports more hits than accesses, regardless of the
/// access stream.
#[test]
fn cache_hits_bounded() {
    props!(48, |rng| {
        let stream = gen::vec(gen::range_u64(0, 4096), 1..512)(rng);
        let mut c = SectoredCache::new(1024, 2, 128, 32);
        for a in stream {
            c.access(a);
        }
        assert!(c.hits() + c.misses() > 0);
        assert!(c.hit_rate() <= 1.0);
        // Re-touching the same address immediately must hit.
        c.access(12345);
        let h = c.hits();
        c.access(12345);
        assert_eq!(c.hits(), h + 1);
    });
}

/// An arbitrary counter set, every field populated.
fn arb_stats(rng: &mut Rng) -> Stats {
    let mut s = Stats::new();
    s.cycles = rng.range_u64(0, 1 << 40);
    s.instrs_mem = rng.next_u64() >> 20;
    s.instrs_compute = rng.next_u64() >> 20;
    s.instrs_ctrl = rng.next_u64() >> 20;
    s.global_load_transactions = rng.next_u64() >> 20;
    s.global_store_transactions = rng.next_u64() >> 20;
    s.l1_accesses = rng.next_u64() >> 20;
    s.l1_hits = rng.next_u64() >> 20;
    s.l2_accesses = rng.next_u64() >> 20;
    s.l2_hits = rng.next_u64() >> 20;
    s.dram_accesses = rng.next_u64() >> 20;
    s.const_accesses = rng.next_u64() >> 20;
    s.const_hits = rng.next_u64() >> 20;
    for slot in s.stall_by_tag.iter_mut() {
        *slot = rng.next_u64() >> 20;
    }
    for slot in s.load_transactions_by_tag.iter_mut() {
        *slot = rng.next_u64() >> 20;
    }
    s.warps = rng.range_u64(0, 1 << 20);
    s.vfunc_calls = rng.next_u64() >> 20;
    s
}

/// `Stats::merged` is order-independent and associative — the property
/// the deterministic parallel merge rests on.
#[test]
fn stats_merge_order_independent() {
    props!(48, |rng| {
        let parts: Vec<Stats> = gen::vec(arb_stats, 1..12)(rng);
        let merged = Stats::merged(&parts);
        let mut reversed: Vec<Stats> = parts.clone();
        reversed.reverse();
        assert_eq!(merged, Stats::merged(&reversed));
        // Associativity: fold a random split pairwise.
        let cut = rng.range_usize(0, parts.len());
        let left = Stats::merged(&parts[..cut]);
        let right = Stats::merged(&parts[cut..]);
        assert_eq!(merged, Stats::merged([&left, &right]));
        // Merging matches sequential AddAssign accumulation.
        let mut acc = Stats::new();
        for p in &parts {
            acc += p;
        }
        assert_eq!(merged, acc);
    });
}

/// Merging with zeroed counters is the identity, and per-field totals
/// are exact sums.
#[test]
fn stats_merge_identity_and_sums() {
    props!(48, |rng| {
        let parts: Vec<Stats> = gen::vec(arb_stats, 1..8)(rng);
        let merged = Stats::merged(&parts);
        let mut with_zero = parts.clone();
        with_zero.push(Stats::new());
        assert_eq!(merged, Stats::merged(&with_zero));
        let total: u64 = parts.iter().map(|p| p.cycles).sum();
        assert_eq!(merged.cycles, total);
        let l1: u64 = parts.iter().map(|p| p.l1_hits).sum();
        assert_eq!(merged.l1_hits, l1);
    });
}

/// A `SimPool` sweep merges to the same totals for any job count.
#[test]
fn pool_sweep_merge_deterministic() {
    props!(8, |rng| {
        let seeds = gen::vec(gen::any_u64(), 2..6)(rng);
        let sweep = |jobs: usize| -> Stats {
            let results = SimPool::new(jobs).run(&seeds, |&seed| {
                let mut w = WarpTrace::new();
                let addrs: Vec<u64> = (0..32).map(|l| (seed % 4096) * 64 + l * 40).collect();
                w.push(mem_op(addrs, AccessTag::VtablePtr));
                w.push(Op::Alu((seed % 7) as u16 + 1));
                Gpu::new(GpuConfig::small()).execute(&KernelTrace { warps: vec![w] })
            });
            Stats::merged(&results)
        };
        assert_eq!(sweep(1), sweep(4));
    });
}

/// Functional layer: masked stores only write active lanes, whatever
/// the mask.
#[test]
fn masked_stores_respect_mask() {
    props!(48, |rng| {
        let mask = rng.range_u64(1, u32::MAX as u64 + 1) as u32;
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let base = mem.reserve(256, 8);
        run_kernel(&mut mem, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 8)));
            let vals = lanes_from_fn(|_| Some(7u64));
            w.with_mask(mask, |w| w.st(AccessTag::Other, 8, &addrs, &vals));
        });
        for i in 0..32 {
            let v = mem.read_u64(base.offset(i as u64 * 8)).unwrap();
            let expect = if (mask >> i) & 1 == 1 { 7 } else { 0 };
            assert_eq!(v, expect, "lane {i}");
        }
    });
}

/// Generates a random multi-warp kernel mixing ALU, control, dispatch
/// and tagged memory ops (loads, stores, constant-space walks).
fn arb_kernel(rng: &mut Rng) -> KernelTrace {
    let n_warps = rng.range_usize(1, 20);
    let mut warps = Vec::with_capacity(n_warps);
    for _ in 0..n_warps {
        let mut w = WarpTrace::new();
        for _ in 0..rng.range_usize(1, 20) {
            match rng.range_usize(0, 6) {
                0 => w.push(Op::Alu(rng.range_u64(1, 8) as u16)),
                1 => w.push(Op::Branch),
                2 => w.push(Op::IndirectCall {
                    target: rng.range_u64(0, 6),
                }),
                3 => {
                    let tag = AccessTag::ALL[rng.range_usize(0, AccessTag::ALL.len())];
                    let addrs = gen::vec(gen::range_u64(0, 1 << 16), 1..32)(rng);
                    w.push(mem_op(addrs, tag));
                }
                4 => {
                    let addrs = gen::vec(gen::range_u64(0, 1 << 16), 1..32)(rng);
                    let mask = (1u32 << addrs.len().min(31)) - 1;
                    w.push(Op::Mem(MemOp {
                        space: Space::Global,
                        is_store: true,
                        width: 8,
                        mask: mask.max(1),
                        addrs: addrs.into(),
                        tag: AccessTag::Field,
                    }));
                }
                _ => {
                    let addrs = gen::vec(gen::range_u64(0, 4096), 1..32)(rng);
                    let mask = (1u32 << addrs.len().min(31)) - 1;
                    w.push(Op::Mem(MemOp {
                        space: Space::Const,
                        is_store: false,
                        width: 8,
                        mask: mask.max(1),
                        addrs: addrs.into(),
                        tag: AccessTag::VfuncPtr,
                    }));
                }
            }
        }
        warps.push(w);
    }
    KernelTrace { warps }
}

/// Attribution histograms merge associatively and commutatively with
/// exact totals — the algebra the thread-count-independent merged
/// report rests on.
#[test]
fn log_hist_merge_associative_commutative() {
    use gvf_sim::LogHist;
    props!(48, |rng| {
        let mk = |rng: &mut Rng| {
            let mut h = LogHist::new();
            for _ in 0..rng.range_usize(0, 20) {
                h.record(rng.next_u64() >> rng.range_u64(0, 64));
            }
            h
        };
        let (a, b, c) = (mk(rng), mk(rng), mk(rng));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge is associative");
        assert_eq!(ab_c.total(), a.total() + b.total() + c.total());
    });
}

/// Attribution inherits the engine's determinism contract: on arbitrary
/// kernels, the merged [`AttribReport`] is identical for any host
/// thread count and any merge order, probing never perturbs `Stats`,
/// and the attributed per-tag transaction totals reconcile exactly with
/// the `Stats` load-transaction counters (the profiler's hard
/// cross-check invariant).
#[test]
fn attribution_identical_any_thread_count() {
    use gvf_sim::{AttribReport, AttributionProbe};
    props!(12, |rng| {
        let kernel = arb_kernel(rng);
        let cfg = GpuConfig::small();
        let plain = Gpu::new(cfg.clone()).execute(&kernel);
        let (stats, probes) =
            Gpu::new(cfg.clone()).execute_probed(&kernel, |_| AttributionProbe::new());
        assert_eq!(stats, plain, "attribution probe perturbed Stats");
        let mut serial = AttribReport::default();
        for p in probes {
            serial.merge(p.report());
        }
        for tag in AccessTag::ALL {
            assert_eq!(
                serial.transactions_by_tag(tag),
                plain.load_transactions_by_tag[tag.index()],
                "attribution does not reconcile for {tag:?}"
            );
        }
        for threads in [2usize, 5] {
            let (s, probes) = Gpu::new(cfg.clone())
                .with_threads(threads)
                .execute_probed(&kernel, |_| AttributionProbe::new());
            assert_eq!(s, plain, "probed Stats diverged at {threads} threads");
            // Merge in reverse SM order: commutativity must make the
            // whole-GPU report insensitive to it.
            let mut reports: Vec<AttribReport> = probes
                .into_iter()
                .map(AttributionProbe::into_report)
                .collect();
            reports.reverse();
            let mut total = AttribReport::default();
            for r in &reports {
                total.merge(r);
            }
            assert_eq!(total, serial, "attribution diverged at {threads} threads");
        }
    });
}

/// Cycle-audit invariants: (1) the audit probe never perturbs `Stats`;
/// (2) the epoch-class accounting covers each SM's timeline exactly —
/// `active + stalledKnown + stalledOther + drained + skipped + tail ==
/// sms × Stats::cycles`; (3) the merged report is bit-identical for
/// any host thread count (the serial-vs-parallel byte-diff CI gate in
/// library form), on arbitrary kernels.
#[test]
fn cycle_audit_reconciles_and_is_thread_count_invariant() {
    use gvf_sim::{CycleAuditProbe, CycleAuditReport};
    let audit_of = |gpu: Gpu, kernel: &KernelTrace, plain: &Stats| -> CycleAuditReport {
        let (stats, probes) = gpu.execute_probed(kernel, |_| CycleAuditProbe::new());
        assert_eq!(&stats, plain, "audit probe perturbed Stats");
        let mut report = CycleAuditReport {
            sms: probes.len() as u64,
            audited_cycles: stats.cycles,
            ..CycleAuditReport::default()
        };
        for p in probes {
            p.finalize_into(stats.cycles, &mut report);
        }
        report
    };
    props!(12, |rng| {
        let kernel = arb_kernel(rng);
        let cfg = GpuConfig::small();
        let plain = Gpu::new(cfg.clone()).execute(&kernel);
        let serial = audit_of(Gpu::new(cfg.clone()), &kernel, &plain);
        assert!(
            serial.reconciles(),
            "audit classes {} != {} sms x {} cycles",
            serial.classes_total(),
            serial.sms,
            serial.audited_cycles
        );
        assert_eq!(serial.audited_cycles, plain.cycles);
        for threads in [2usize, 5] {
            let parallel = audit_of(Gpu::new(cfg.clone()).with_threads(threads), &kernel, &plain);
            assert_eq!(parallel, serial, "audit diverged at {threads} threads");
        }
    });
}

/// The engine's whole determinism contract in property form:
/// [`Gpu::execute`] ≡ [`Gpu::execute_serial`] over random programs,
/// with fast-forward on and off, at 1/2/8 host threads. All three
/// determinism-checked artifacts must agree — [`Stats`], the merged
/// attribution report and the merged cycle-audit report. The structs
/// compared here are exactly what the harness serializes, and the
/// serializer is deterministic, so struct equality is artifact
/// byte-equality.
#[test]
fn execute_matches_execute_serial_over_ff_and_threads() {
    use gvf_sim::{
        AttribReport, AttributionProbe, CycleAuditProbe, CycleAuditReport, Gpu, KernelTrace,
    };

    fn artifacts(
        gpu: &Gpu,
        serial: bool,
        kernel: &KernelTrace,
    ) -> (Stats, AttribReport, CycleAuditReport) {
        let (stats, aprobes) = if serial {
            gpu.execute_serial_probed(kernel, |_| AttributionProbe::new())
        } else {
            gpu.execute_probed(kernel, |_| AttributionProbe::new())
        };
        let mut attrib = AttribReport::default();
        for p in aprobes {
            attrib.merge(p.report());
        }
        let (s2, cprobes) = if serial {
            gpu.execute_serial_probed(kernel, |_| CycleAuditProbe::new())
        } else {
            gpu.execute_probed(kernel, |_| CycleAuditProbe::new())
        };
        assert_eq!(stats, s2, "Stats differ across probe kinds");
        let mut audit = CycleAuditReport {
            sms: cprobes.len() as u64,
            audited_cycles: s2.cycles,
            ..CycleAuditReport::default()
        };
        for p in cprobes {
            p.finalize_into(s2.cycles, &mut audit);
        }
        (stats, attrib, audit)
    }

    props!(8, |rng| {
        let kernel = arb_kernel(rng);
        let cfg = GpuConfig::small();
        let reference = artifacts(&Gpu::new(cfg.clone()), true, &kernel);
        for ff in [true, false] {
            for threads in [1usize, 2, 8] {
                let gpu = Gpu::new(cfg.clone())
                    .with_threads(threads)
                    .with_fast_forward(ff);
                let parallel = artifacts(&gpu, false, &kernel);
                assert_eq!(
                    parallel, reference,
                    "execute diverged from serial reference (ff={ff}, threads={threads})"
                );
                let serial = artifacts(&gpu, true, &kernel);
                assert_eq!(
                    serial, reference,
                    "execute_serial diverged (ff={ff}, threads={threads})"
                );
            }
        }
    });
}

/// Observability invariant: probes never perturb the run (`Stats` from
/// a probed execution are bit-identical to the un-probed `NopProbe`
/// path), and the hook stream is *complete* — a [`CountingProbe`]
/// reconstructs every event-derived counter exactly. Holds serially and
/// in parallel for any host thread count, on arbitrary kernels.
#[test]
fn probe_events_reconstruct_stats_any_thread_count() {
    use gvf_sim::CountingProbe;
    props!(12, |rng| {
        let kernel = arb_kernel(rng);
        let cfg = GpuConfig::small();
        let plain = Gpu::new(cfg.clone()).execute(&kernel);
        for threads in [1usize, 2, 5] {
            let gpu = Gpu::new(cfg.clone()).with_threads(threads);
            let (s, probes) = gpu.execute_probed(&kernel, |_| CountingProbe::new());
            assert_eq!(s, plain, "probed Stats diverged at {threads} threads");
            let mut view = CountingProbe::merged(&probes);
            // The trace-derived trio is carried by no event; copy it
            // over and demand everything else match exactly.
            view.cycles = plain.cycles;
            view.warps = plain.warps;
            view.vfunc_calls = plain.vfunc_calls;
            assert_eq!(view, plain, "event stream incomplete at {threads} threads");
        }
    });
}
