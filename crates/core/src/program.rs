//! The "compiled and loaded" program: materialized vTables, per-kernel
//! constant tables, TypePointer tags, COAL lookup structures, object
//! construction, and the dispatch emission itself.

use crate::registry::{FuncId, TypeId, TypeRegistry};
use crate::segtree::{LinearRangeTable, ResolvedRange, SegmentTree};
use crate::strategy::Strategy;
use gvf_alloc::{DeviceAllocator, TypeKey};
use gvf_mem::{DeviceMemory, VirtAddr, MAX_TAG};
use gvf_sim::{lanes_from_fn, AccessTag, Lanes, LogHist, WarpCtx, WARP_SIZE};
use std::cell::Cell;
use std::collections::HashMap;

/// Base of the synthetic "instruction memory" where virtual-function
/// code addresses live. Decoding a code address back to a [`FuncId`] is
/// how the functional model "jumps" to a body. GPUs embed each virtual
/// function's code separately in every kernel (§2: no dynamic loading or
/// cross-kernel code sharing), so the kernel index participates in the
/// address — which is exactly why the constant-memory indirection
/// exists.
const CODE_BASE: u64 = 0x1_0000_0000_0000;
const CODE_STRIDE: u64 = 16;
const CODE_KERNEL_SHIFT: u32 = 28;

/// Marker written into the CPU-vTable-pointer slot of `sharedNew`
/// objects; the GPU never reads it, it just occupies the slot (§4).
const CPU_VTABLE_MARK: u64 = 0xC0DE_0000_0000;

/// Reserved tag meaning "this type's vTable did not fit the tag budget;
/// dispatch through the classic embedded-pointer path" (the fallback
/// mechanism of §6.1 for programs with more types than the 15 bits can
/// name).
pub const NO_TAG: u16 = gvf_mem::MAX_TAG;

/// COAL's range-lookup data structure (the §5 design choice: the paper
/// picks a segment tree for `O(log K)`; the linear scan is the ablation
/// baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LookupKind {
    /// Balanced segment tree (paper Algorithm 1).
    #[default]
    SegmentTree,
    /// Entry-by-entry scan of the virtual range table.
    LinearScan,
}

impl LookupKind {
    /// Short machine-readable label (attribution schema field).
    pub fn label(self) -> &'static str {
        match self {
            LookupKind::SegmentTree => "segment-tree",
            LookupKind::LinearScan => "linear-scan",
        }
    }
}

/// COAL lookup attribution: how many dispatches walked the range
/// structure, how deep, and how many range comparisons they cost —
/// the §5 evidence behind Fig. 9 and the lookup ablation. Returned by
/// [`DeviceProgram::lookup_attrib`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupAttrib {
    /// Which structure dispatch walked.
    pub kind: LookupKind,
    /// Real (non-padding) ranges in the structure.
    pub num_ranges: u64,
    /// Tree depth (`0` for the linear scan).
    pub tree_depth: u32,
    /// Dispatches that entered the lookup.
    pub dispatches: u64,
    /// Participating lanes across all dispatches.
    pub lanes: u64,
    /// Per-dispatch levels walked (tree) or entries examined (linear).
    pub walk_depth: LogHist,
    /// Per-dispatch range comparisons (2 per tree level / 2 per linear
    /// entry).
    pub comparisons: LogHist,
}

/// TypePointer tag attribution: decode vs. fallback dispatch counts and
/// the software mask cost — the §6 evidence distinguishing the MMU mode
/// from the software prototype. Returned by
/// [`DeviceProgram::tag_attrib`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagAttrib {
    /// How the tag names a vTable.
    pub tag_mode: TagMode,
    /// `true` when tag stripping is free (the MMU ignores the top bits —
    /// [`Strategy::TypePointerHw`]); `false` for the software prototype,
    /// which pays [`TagAttrib::mask_ops`] mask instructions.
    pub hardware_mask: bool,
    /// Dispatches that decoded at least one lane's tag (SHR + ADD/IMAD).
    pub decode_dispatches: u64,
    /// Lanes dispatched through tag decode.
    pub decode_lanes: u64,
    /// Dispatches that took the classic path for ≥ 1 `NO_TAG` lane.
    pub fallback_dispatches: u64,
    /// Lanes dispatched through the `NO_TAG` fallback.
    pub fallback_lanes: u64,
    /// Software mask instructions emitted at member accesses (always `0`
    /// when [`hardware_mask`](Self::hardware_mask)).
    pub mask_ops: u64,
}

/// How TypePointer encodes a type in the 15 unused pointer bits (§6.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TagMode {
    /// The tag is a **byte offset** into the contiguous vTable region
    /// (up to 32 KiB of vTables, ~4k vFunc pointers).
    #[default]
    Offset,
    /// The tag is a **type index**; all vTables are padded to the size of
    /// the largest, and the offset is `index × paddedSize` (supports up
    /// to 32k types at the cost of padding, §6.2).
    Index,
}

impl TagMode {
    /// Short machine-readable label (attribution schema field).
    pub fn label(self) -> &'static str {
        match self {
            TagMode::Offset => "offset",
            TagMode::Index => "index",
        }
    }
}

/// A virtual call site, as the compiler sees it.
#[derive(Clone, Debug, Default)]
pub struct CallSite {
    /// Virtual slot being invoked.
    pub slot: usize,
    /// Types that can reach this site (`None` = every type implementing
    /// the slot). Concord's switch enumerates exactly these.
    pub candidates: Option<Vec<TypeId>>,
    /// `true` when static analysis proves every lane calls through the
    /// *same object* here. COAL's heuristic skips instrumenting such
    /// sites and falls back to the plain CUDA sequence (§5) — the
    /// situation RAY hits.
    pub statically_converged: bool,
}

impl CallSite {
    /// A site invoking `slot` with no static knowledge.
    pub fn new(slot: usize) -> Self {
        CallSite {
            slot,
            candidates: None,
            statically_converged: false,
        }
    }

    /// Restricts the candidate types (class-hierarchy analysis).
    pub fn with_candidates(mut self, candidates: Vec<TypeId>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Marks the site statically warp-converged.
    pub fn converged(mut self) -> Self {
        self.statically_converged = true;
        self
    }
}

/// A fully materialized program for one [`Strategy`].
///
/// Construction order mirrors the paper's toolflow:
///
/// 1. [`DeviceProgram::new`] lays out the vTables in global memory and
///    the per-kernel function tables in constant memory (§2), and picks
///    each type's TypePointer tag (§6.1);
/// 2. [`register_types`](DeviceProgram::register_types) declares object
///    sizes to the allocator;
/// 3. objects are built with [`construct`](DeviceProgram::construct);
/// 4. [`finalize_ranges`](DeviceProgram::finalize_ranges) snapshots the
///    allocator's virtual range table into the COAL segment tree;
/// 5. kernels dispatch through [`vcall`](DeviceProgram::vcall).
#[derive(Debug)]
pub struct DeviceProgram {
    strategy: Strategy,
    registry: TypeRegistry,
    tag_mode: TagMode,
    vtable_base: VirtAddr,
    vtable_offsets: Vec<u64>,
    padded_vtable_bytes: u64,
    vtable_to_type: HashMap<u64, TypeId>,
    tree: Option<SegmentTree>,
    linear: Option<LinearRangeTable>,
    lookup_kind: LookupKind,
    /// One constant-memory function table per launched kernel (§2):
    /// `const_tables[k]` holds kernel `k`'s code addresses.
    const_tables: Vec<VirtAddr>,
    current_kernel: usize,
    /// Tag-encoding budget in bytes (offset mode). Types whose vTables
    /// start beyond it get [`NO_TAG`] and dispatch through the classic
    /// path — the §6.1 link-time fallback.
    tag_capacity: u64,
    /// TypePointer dispatch counters (interior-mutable: `vcall` takes
    /// `&self`). See [`TagAttrib`].
    tp_decode_dispatches: Cell<u64>,
    tp_decode_lanes: Cell<u64>,
    tp_fallback_dispatches: Cell<u64>,
    tp_fallback_lanes: Cell<u64>,
    /// Software tag-mask instructions emitted at member accesses.
    mask_ops: Cell<u64>,
}

impl DeviceProgram {
    /// Materializes vTables and constant tables for `registry` under
    /// `strategy`, with the default [`TagMode::Offset`].
    pub fn new(mem: &mut DeviceMemory, registry: &TypeRegistry, strategy: Strategy) -> Self {
        Self::with_tag_mode(mem, registry, strategy, TagMode::Offset)
    }

    /// Like [`new`](Self::new) with an explicit TypePointer tag mode.
    ///
    /// # Panics
    /// Panics if the registry is empty, or if [`TagMode::Offset`] cannot
    /// encode the vTable region in 15 bits (use [`TagMode::Index`], or
    /// [`with_tag_budget`](Self::with_tag_budget) for the §6.1 fallback).
    pub fn with_tag_mode(
        mem: &mut DeviceMemory,
        registry: &TypeRegistry,
        strategy: Strategy,
        tag_mode: TagMode,
    ) -> Self {
        let prog = Self::with_tag_budget(mem, registry, strategy, tag_mode, u64::MAX);
        if tag_mode == TagMode::Offset {
            let total: u64 = registry
                .type_ids()
                .map(|t| registry.num_slots(t) as u64 * 8)
                .sum();
            assert!(
                total <= MAX_TAG as u64,
                "vTable region ({total} bytes) exceeds the 15 tag bits; use \
                 TagMode::Index or with_tag_budget"
            );
        }
        prog
    }

    /// Like [`with_tag_mode`](Self::with_tag_mode) but with a finite
    /// tag-encoding budget: types whose vTable starts beyond
    /// `tag_capacity_bytes` receive the reserved [`NO_TAG`] tag and
    /// dispatch through the classic embedded-pointer sequence — the
    /// link-time fallback the paper describes for programs with more
    /// types than the unused bits can name (§6.1).
    ///
    /// # Panics
    /// Panics if the registry is empty or `tag_capacity_bytes` collides
    /// with the [`NO_TAG`] sentinel.
    pub fn with_tag_budget(
        mem: &mut DeviceMemory,
        registry: &TypeRegistry,
        strategy: Strategy,
        tag_mode: TagMode,
        tag_capacity_bytes: u64,
    ) -> Self {
        assert!(registry.num_types() > 0, "empty type registry");
        assert!(
            tag_capacity_bytes == u64::MAX || tag_capacity_bytes < NO_TAG as u64,
            "tag capacity must stay below the NO_TAG sentinel"
        );
        let max_slots = registry
            .type_ids()
            .map(|t| registry.num_slots(t))
            .max()
            .expect("non-empty registry") as u64;
        let padded_vtable_bytes = max_slots * 8;

        // Per-type vTable offsets within the contiguous region.
        let mut vtable_offsets = Vec::with_capacity(registry.num_types());
        let mut cursor = 0u64;
        for t in registry.type_ids() {
            match tag_mode {
                TagMode::Offset => {
                    vtable_offsets.push(cursor);
                    cursor += registry.num_slots(t) as u64 * 8;
                }
                TagMode::Index => {
                    vtable_offsets.push(t.0 as u64 * padded_vtable_bytes);
                    cursor = (t.0 as u64 + 1) * padded_vtable_bytes;
                }
            }
        }
        let vtable_base = mem.reserve(cursor.max(8), 256);

        // Fill vTables (global memory). A vTable entry holds a byte
        // offset into constant memory; the per-kernel constant table
        // holds the function's address in that kernel's instruction
        // memory (§2).
        let mut vtable_to_type = HashMap::new();
        let mut g = 0u64;
        for t in registry.type_ids() {
            let voff = vtable_offsets[t.0 as usize];
            vtable_to_type.insert(vtable_base.offset(voff).raw(), t);
            for slot in 0..registry.num_slots(t) {
                mem.write_u64(vtable_base.offset(voff + slot as u64 * 8), g * 8)
                    .expect("vtable write");
                g += 1;
            }
        }

        let table0 = materialize_const_table(mem, registry, 0);
        DeviceProgram {
            strategy,
            registry: registry.clone(),
            tag_mode,
            vtable_base,
            vtable_offsets,
            padded_vtable_bytes,
            vtable_to_type,
            tree: None,
            linear: None,
            lookup_kind: LookupKind::default(),
            const_tables: vec![table0],
            current_kernel: 0,
            tag_capacity: tag_capacity_bytes,
            tp_decode_dispatches: Cell::new(0),
            tp_decode_lanes: Cell::new(0),
            tp_fallback_dispatches: Cell::new(0),
            tp_fallback_lanes: Cell::new(0),
            mask_ops: Cell::new(0),
        }
    }

    /// Declares the launch of a new kernel: materializes its
    /// constant-memory function table (every kernel embeds its own copy
    /// of the virtual-function code, so the code addresses differ, §2)
    /// and routes subsequent dispatch through it. Returns the kernel
    /// index.
    pub fn begin_kernel(&mut self, mem: &mut DeviceMemory) -> usize {
        let k = self.const_tables.len();
        self.const_tables
            .push(materialize_const_table(mem, &self.registry, k));
        self.current_kernel = k;
        k
    }

    /// Index of the kernel whose constant table dispatch currently uses.
    pub fn current_kernel(&self) -> usize {
        self.current_kernel
    }

    /// The strategy this program was compiled for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The type registry snapshot.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The TypePointer tag mode.
    pub fn tag_mode(&self) -> TagMode {
        self.tag_mode
    }

    /// Per-object header size under this strategy.
    pub fn header_bytes(&self) -> u64 {
        self.strategy.header_bytes()
    }

    /// Gross object size (header + fields, 8-byte aligned).
    pub fn obj_size(&self, t: TypeId) -> u64 {
        let raw = self.header_bytes() + self.registry.field_bytes(t);
        raw.div_ceil(8) * 8
    }

    /// Device address of `t`'s vTable.
    pub fn vtable_addr(&self, t: TypeId) -> VirtAddr {
        self.vtable_base.offset(self.vtable_offsets[t.0 as usize])
    }

    /// The 15-bit TypePointer tag for `t`, or [`NO_TAG`] when the type
    /// fell outside the tag budget and uses the classic fallback path.
    pub fn type_tag(&self, t: TypeId) -> u16 {
        let raw = match self.tag_mode {
            TagMode::Offset => self.vtable_offsets[t.0 as usize],
            TagMode::Index => t.0 as u64,
        };
        if raw >= self.tag_capacity.min(NO_TAG as u64) {
            NO_TAG
        } else {
            raw as u16
        }
    }

    /// Bytes of vTable padding waste under [`TagMode::Index`] (the
    /// space-accounting of §6.2); zero in offset mode.
    pub fn vtable_padding_bytes(&self) -> u64 {
        match self.tag_mode {
            TagMode::Offset => 0,
            TagMode::Index => self
                .registry
                .type_ids()
                .map(|t| self.padded_vtable_bytes - self.registry.num_slots(t) as u64 * 8)
                .sum(),
        }
    }

    /// Declares every type's gross size to `alloc`.
    pub fn register_types(&self, alloc: &mut dyn DeviceAllocator) {
        for t in self.registry.type_ids() {
            alloc.register_type(TypeKey(t.0), self.obj_size(t));
        }
    }

    /// Allocates and initializes one object of `t`, returning the
    /// pointer a program would hold — tagged under TypePointer.
    ///
    /// # Panics
    /// Panics on allocator or memory errors.
    pub fn construct(
        &self,
        mem: &mut DeviceMemory,
        alloc: &mut dyn DeviceAllocator,
        t: TypeId,
    ) -> VirtAddr {
        let p = alloc.alloc(mem, TypeKey(t.0));
        match self.strategy {
            Strategy::Cuda => {
                mem.write_ptr(p, self.vtable_addr(t)).expect("vptr write");
            }
            Strategy::Concord => {
                mem.write_u32(p, t.0).expect("type tag write");
            }
            Strategy::Branch => {}
            _ => {
                // sharedNew layout: CPU vptr then GPU vptr (§4).
                mem.write_u64(p, CPU_VTABLE_MARK + t.0 as u64)
                    .expect("cpu vptr write");
                mem.write_ptr(p.offset(8), self.vtable_addr(t))
                    .expect("gpu vptr write");
            }
        }
        if self.strategy.uses_tagged_pointers() {
            p.with_tag(self.type_tag(t))
        } else {
            p
        }
    }

    /// Snapshots the allocator's virtual range table and builds the COAL
    /// segment tree. Required before [`vcall`](Self::vcall) under
    /// [`Strategy::Coal`]; a no-op otherwise.
    ///
    /// # Panics
    /// Panics if the strategy is COAL and the allocator keeps no ranges
    /// (COAL requires SharedOA, §5).
    pub fn finalize_ranges(&mut self, mem: &mut DeviceMemory, alloc: &dyn DeviceAllocator) {
        if self.strategy != Strategy::Coal {
            return;
        }
        let ranges: Vec<ResolvedRange> = alloc
            .ranges()
            .into_iter()
            .map(|r| ResolvedRange {
                lo: r.base.canonical(),
                hi: r.base.canonical() + r.len,
                vtable: self.vtable_addr(TypeId(r.ty.0)),
            })
            .collect();
        assert!(
            !ranges.is_empty(),
            "COAL requires a type-based allocator with a virtual range table (SharedOA)"
        );
        self.tree = Some(SegmentTree::build(mem, &ranges));
        self.linear = Some(LinearRangeTable::build(mem, &ranges));
    }

    /// The COAL segment tree, if built.
    pub fn segment_tree(&self) -> Option<&SegmentTree> {
        self.tree.as_ref()
    }

    /// Selects COAL's lookup structure (§5 ablation: segment tree vs
    /// linear scan). Default is the paper's segment tree.
    pub fn set_lookup_kind(&mut self, kind: LookupKind) {
        self.lookup_kind = kind;
    }

    /// The lookup structure COAL dispatch currently uses.
    pub fn lookup_kind(&self) -> LookupKind {
        self.lookup_kind
    }

    /// Lookup attribution for the *active* lookup structure, or `None`
    /// when no structure was built (non-COAL strategies, or COAL before
    /// [`finalize_ranges`](Self::finalize_ranges)). Counters reset when
    /// `finalize_ranges` rebuilds the structures.
    pub fn lookup_attrib(&self) -> Option<LookupAttrib> {
        match self.lookup_kind {
            LookupKind::SegmentTree => self.tree.as_ref().map(|t| {
                // The padded tree walks exactly `depth` levels per
                // dispatch, 2 in-range tests per level.
                let mut walk_depth = LogHist::new();
                walk_depth.record_n(t.depth() as u64, t.walks());
                let mut comparisons = LogHist::new();
                comparisons.record_n(2 * t.depth() as u64, t.walks());
                LookupAttrib {
                    kind: LookupKind::SegmentTree,
                    num_ranges: t.num_ranges() as u64,
                    tree_depth: t.depth(),
                    dispatches: t.walks(),
                    lanes: t.walk_lanes(),
                    walk_depth,
                    comparisons,
                }
            }),
            LookupKind::LinearScan => self.linear.as_ref().map(|l| {
                let entries = l.entries_scanned();
                // 2 comparisons per entry examined; doubling a value
                // moves it up exactly one log2 bucket, so rebuilding
                // from bucket lower bounds is exact.
                let mut comparisons = LogHist::new();
                for (i, &c) in entries.counts().iter().enumerate() {
                    if c > 0 {
                        comparisons.record_n(2 * LogHist::bucket_lo(i), c);
                    }
                }
                LookupAttrib {
                    kind: LookupKind::LinearScan,
                    num_ranges: l.num_ranges() as u64,
                    tree_depth: 0,
                    dispatches: l.scans(),
                    lanes: l.scan_lanes(),
                    walk_depth: entries,
                    comparisons,
                }
            }),
        }
    }

    /// TypePointer tag attribution, or `None` for strategies that do
    /// not tag pointers.
    pub fn tag_attrib(&self) -> Option<TagAttrib> {
        self.strategy.uses_tagged_pointers().then(|| TagAttrib {
            tag_mode: self.tag_mode,
            hardware_mask: self.strategy.member_mask_alu() == 0,
            decode_dispatches: self.tp_decode_dispatches.get(),
            decode_lanes: self.tp_decode_lanes.get(),
            fallback_dispatches: self.tp_fallback_dispatches.get(),
            fallback_lanes: self.tp_fallback_lanes.get(),
            mask_ops: self.mask_ops.get(),
        })
    }

    /// Host-side type query for a constructed object (testing aid).
    pub fn type_of(&self, mem: &mut DeviceMemory, obj: VirtAddr) -> Option<TypeId> {
        match self.strategy {
            Strategy::Concord => {
                let tag = mem.read_u32(obj.strip_tag()).ok()?;
                (tag < self.registry.num_types() as u32).then_some(TypeId(tag))
            }
            Strategy::Branch => None,
            _ if self.strategy.uses_tagged_pointers() => {
                if obj.tag() == NO_TAG {
                    // Fallback type: resolve through the embedded vptr.
                    let v = mem.read_u64(obj.strip_tag().offset(8)).ok()?;
                    self.vtable_to_type.get(&v).copied()
                } else {
                    self.type_from_tag(obj.tag())
                }
            }
            _ => {
                let voff = self.strategy.gpu_vptr_offset()?;
                let v = mem.read_u64(obj.strip_tag().offset(voff)).ok()?;
                self.vtable_to_type.get(&v).copied()
            }
        }
    }

    fn type_from_tag(&self, tag: u16) -> Option<TypeId> {
        match self.tag_mode {
            TagMode::Offset => self
                .vtable_offsets
                .iter()
                .position(|&o| o == tag as u64)
                .map(|i| TypeId(i as u32)),
            TagMode::Index => {
                ((tag as usize) < self.registry.num_types()).then_some(TypeId(tag as u32))
            }
        }
    }

    /// Per-lane member address computation: strips TypePointer tags
    /// (emitting the prototype's mask instruction when required, §6.3)
    /// and applies the header offset.
    pub fn field_addrs(
        &self,
        ctx: &mut WarpCtx<'_>,
        objs: &Lanes<VirtAddr>,
        field_off: u64,
    ) -> Lanes<VirtAddr> {
        let mask_alu = self.strategy.member_mask_alu();
        if mask_alu > 0 {
            ctx.alu(mask_alu);
            self.mask_ops.set(self.mask_ops.get() + mask_alu as u64);
        }
        let hdr = self.header_bytes();
        lanes_from_fn(|i| objs[i].map(|o| o.strip_tag().offset(hdr + field_off)))
    }

    /// Loads a member field (`width` bytes) from each lane's object.
    ///
    /// # Panics
    /// Panics on a device memory fault.
    pub fn ld_field(
        &self,
        ctx: &mut WarpCtx<'_>,
        objs: &Lanes<VirtAddr>,
        field_off: u64,
        width: u8,
    ) -> Lanes<u64> {
        let addrs = self.field_addrs(ctx, objs, field_off);
        ctx.ld(AccessTag::Field, width, &addrs)
    }

    /// Stores a member field on each lane's object.
    ///
    /// # Panics
    /// Panics on a device memory fault.
    pub fn st_field(
        &self,
        ctx: &mut WarpCtx<'_>,
        objs: &Lanes<VirtAddr>,
        field_off: u64,
        width: u8,
        values: &Lanes<u64>,
    ) {
        let addrs = self.field_addrs(ctx, objs, field_off);
        ctx.st(AccessTag::Field, width, &addrs, values);
    }

    /// Estimated *static* instructions the compiler emits at one virtual
    /// call site, given the body's static size. Captures the code-size
    /// trade-off the paper notes for Concord (§8.1): the switch lowering
    /// duplicates the (inlined) body into every candidate arm, so its
    /// footprint grows with the candidate set, while every other scheme
    /// shares one out-of-line body behind a call.
    pub fn static_callsite_instrs(&self, site: &CallSite, body_instrs: u32) -> u32 {
        let candidates = site
            .candidates
            .as_ref()
            .map(|c| c.len())
            .unwrap_or_else(|| self.registry.candidates_for_slot(site.slot).len())
            as u32;
        match self.strategy {
            // LDG vTable*; LDG vFunc*; LDC; CALL (+ shared body).
            Strategy::Cuda | Strategy::SharedOa => 4,
            // Tag load + per-candidate compare/branch + inlined body.
            Strategy::Concord => 1 + candidates * (2 + body_instrs),
            // The predefined lookup loop (constant size: it iterates at
            // runtime) + vFunc/const/call tail.
            Strategy::Coal => {
                if site.statically_converged {
                    4
                } else {
                    12
                }
            }
            // SHR; ADD/IMAD; LDG; LDC; CALL.
            Strategy::TypePointerProto | Strategy::TypePointerHw => 5,
            // Register compare chain + direct calls.
            Strategy::Branch => candidates * 3,
        }
    }

    /// Dispatches a virtual call: emits this strategy's exact dispatch
    /// instruction sequence, resolves each lane's callee *through the
    /// materialized tables in simulated memory*, then runs `body` once
    /// per distinct callee with the lane mask narrowed to that group —
    /// the SIMT serialization of divergent indirect branches.
    ///
    /// Lanes that are inactive or hold no object do not participate.
    ///
    /// # Panics
    /// Panics if dispatch reads corrupt tables (wrong construction
    /// order), or under [`Strategy::Branch`] (use
    /// [`branch_call`](Self::branch_call)).
    pub fn vcall(
        &self,
        ctx: &mut WarpCtx<'_>,
        site: &CallSite,
        objs: &Lanes<VirtAddr>,
        mut body: impl FnMut(&mut WarpCtx<'_>, FuncId),
    ) {
        assert!(
            self.strategy != Strategy::Branch,
            "BRANCH has no objects; use branch_call"
        );
        ctx.note_vfunc_call();
        let slot = site.slot;

        // COAL's heuristic: statically converged sites keep the plain
        // CUDA sequence (§5).
        let coal_active = self.strategy == Strategy::Coal && !site.statically_converged;

        match self.strategy {
            Strategy::Concord => self.concord_call(ctx, site, objs, body),
            Strategy::TypePointerProto | Strategy::TypePointerHw => {
                // Lanes whose type overflowed the tag budget carry the
                // NO_TAG sentinel and take the classic path (§6.1).
                let mut fallback: u32 = 0;
                for i in 0..WARP_SIZE {
                    if ctx.is_active(i) && objs[i].map(|o| o.tag()) == Some(NO_TAG) {
                        fallback |= 1 << i;
                    }
                }
                let mut decode_lanes: u64 = 0;
                for i in 0..WARP_SIZE {
                    if ctx.is_active(i) && objs[i].is_some() && (fallback >> i) & 1 == 0 {
                        decode_lanes += 1;
                    }
                }
                if decode_lanes > 0 {
                    self.tp_decode_dispatches
                        .set(self.tp_decode_dispatches.get() + 1);
                    self.tp_decode_lanes
                        .set(self.tp_decode_lanes.get() + decode_lanes);
                }
                if fallback != 0 {
                    self.tp_fallback_dispatches
                        .set(self.tp_fallback_dispatches.get() + 1);
                    self.tp_fallback_lanes
                        .set(self.tp_fallback_lanes.get() + fallback.count_ones() as u64);
                }
                let mut fids = gvf_sim::lanes_none();
                if fallback != 0 {
                    ctx.alu(1); // sentinel test
                    ctx.branch();
                }
                ctx.with_mask(!fallback, |ctx| {
                    // Fig. 5b: SHR to extract the tag, ADD (offset mode)
                    // or IMAD (index mode) to form the vTable address.
                    ctx.alu(2);
                    let slot_addrs = lanes_from_fn(|i| {
                        objs[i].map(|o| {
                            let tag = o.tag() as u64;
                            let voff = match self.tag_mode {
                                TagMode::Offset => tag,
                                TagMode::Index => tag * self.padded_vtable_bytes,
                            };
                            self.vtable_base.offset(voff + slot as u64 * 8)
                        })
                    });
                    let part = self.load_and_decode(ctx, &slot_addrs);
                    for i in 0..WARP_SIZE {
                        if part[i].is_some() {
                            fids[i] = part[i];
                        }
                    }
                });
                ctx.with_mask(fallback, |ctx| {
                    // Classic sequence through the sharedNew GPU vptr.
                    let vaddr = lanes_from_fn(|i| objs[i].map(|o| o.strip_tag().offset(8)));
                    let vptrs = ctx.ld_ptr(AccessTag::VtablePtr, &vaddr);
                    let slot_addrs = lanes_from_fn(|i| vptrs[i].map(|v| v.offset(slot as u64 * 8)));
                    let part = self.load_and_decode(ctx, &slot_addrs);
                    for i in 0..WARP_SIZE {
                        if part[i].is_some() {
                            fids[i] = part[i];
                        }
                    }
                });
                self.indirect_groups(ctx, &fids, &mut body);
            }
            _ if coal_active => {
                let vptrs = match self.lookup_kind {
                    LookupKind::SegmentTree => self
                        .tree
                        .as_ref()
                        .expect("finalize_ranges must run before COAL dispatch")
                        .emit_walk(ctx, objs),
                    LookupKind::LinearScan => self
                        .linear
                        .as_ref()
                        .expect("finalize_ranges must run before COAL dispatch")
                        .emit_scan(ctx, objs),
                };
                let slot_addrs = lanes_from_fn(|i| vptrs[i].map(|v| v.offset(slot as u64 * 8)));
                let fids = self.load_and_decode(ctx, &slot_addrs);
                self.indirect_groups(ctx, &fids, &mut body);
            }
            _ => {
                // CUDA / SharedOA / COAL-fallback: LDG vTable*, LDG
                // vFunc*, LDC, CALL (Fig. 1a).
                let voff = self
                    .strategy
                    .gpu_vptr_offset()
                    .or(Some(8)) // COAL fallback uses the sharedNew layout
                    .expect("vptr offset");
                let vaddr = lanes_from_fn(|i| objs[i].map(|o| o.strip_tag().offset(voff)));
                let vptrs = ctx.ld_ptr(AccessTag::VtablePtr, &vaddr);
                let slot_addrs = lanes_from_fn(|i| vptrs[i].map(|v| v.offset(slot as u64 * 8)));
                let fids = self.load_and_decode(ctx, &slot_addrs);
                self.indirect_groups(ctx, &fids, &mut body);
            }
        }
    }

    /// Loads vTable entries at `slot_addrs` (operation **B**), follows
    /// the constant-memory indirection, and decodes per-lane callees.
    fn load_and_decode(
        &self,
        ctx: &mut WarpCtx<'_>,
        slot_addrs: &Lanes<VirtAddr>,
    ) -> Lanes<FuncId> {
        let centries = ctx.ld(AccessTag::VfuncPtr, 8, slot_addrs);
        let table = self.const_tables[self.current_kernel];
        let caddrs = lanes_from_fn(|i| centries[i].map(|off| table.offset(off)));
        let codes = ctx.ldc(AccessTag::ConstIndirection, 8, &caddrs);
        lanes_from_fn(|i| codes[i].map(decode_code_addr))
    }

    /// Serializes the warp over distinct callees: one indirect call,
    /// body, and return per target subgroup.
    fn indirect_groups(
        &self,
        ctx: &mut WarpCtx<'_>,
        fids: &Lanes<FuncId>,
        body: &mut impl FnMut(&mut WarpCtx<'_>, FuncId),
    ) {
        for (fid, mask) in group_lanes(ctx, fids) {
            ctx.with_mask(mask, |ctx| {
                ctx.indirect_call_to(fid.0 as u64);
                body(ctx, fid);
                ctx.ret();
            });
        }
    }

    /// Concord's switch lowering: a diverged type-tag load followed by a
    /// compare/branch chain with inlined, statically-known bodies.
    fn concord_call(
        &self,
        ctx: &mut WarpCtx<'_>,
        site: &CallSite,
        objs: &Lanes<VirtAddr>,
        mut body: impl FnMut(&mut WarpCtx<'_>, FuncId),
    ) {
        let tag_addrs = lanes_from_fn(|i| objs[i].map(VirtAddr::strip_tag));
        let tags = ctx.ld(AccessTag::TypeTag, 4, &tag_addrs);
        let candidates = match &site.candidates {
            Some(c) => c.clone(),
            None => self.registry.candidates_for_slot(site.slot),
        };
        let mut remaining: u32 = 0;
        for i in 0..WARP_SIZE {
            if ctx.is_active(i) && tags[i].is_some() {
                remaining |= 1 << i;
            }
        }
        for t in candidates {
            if remaining == 0 {
                break;
            }
            ctx.alu(1); // tag compare
            ctx.branch();
            let mut m = 0u32;
            for i in 0..WARP_SIZE {
                if (remaining >> i) & 1 == 1 && tags[i] == Some(t.0 as u64) {
                    m |= 1 << i;
                }
            }
            if m != 0 {
                let fid = self.registry.vfunc(t, site.slot);
                ctx.with_mask(m, |ctx| body(ctx, fid));
                remaining &= !m;
            }
        }
        assert_eq!(
            remaining, 0,
            "Concord switch missed a type (bad candidate set)"
        );
    }

    /// The BRANCH microbenchmark dispatch (§8.3): per-lane types live in
    /// registers, so arbitration is a pure compare/branch chain with a
    /// direct call per group — no memory at all.
    ///
    /// # Panics
    /// Panics if a lane's type is outside the registry.
    pub fn branch_call(
        &self,
        ctx: &mut WarpCtx<'_>,
        slot: usize,
        types: &Lanes<TypeId>,
        mut body: impl FnMut(&mut WarpCtx<'_>, FuncId),
    ) {
        ctx.note_vfunc_call();
        let mut remaining: u32 = 0;
        for i in 0..WARP_SIZE {
            if ctx.is_active(i) && types[i].is_some() {
                remaining |= 1 << i;
            }
        }
        for t in self.registry.type_ids() {
            if remaining == 0 {
                break;
            }
            ctx.alu(1);
            ctx.branch();
            let mut m = 0u32;
            for i in 0..WARP_SIZE {
                if (remaining >> i) & 1 == 1 && types[i] == Some(t) {
                    m |= 1 << i;
                }
            }
            if m != 0 {
                let fid = self.registry.vfunc(t, slot);
                ctx.with_mask(m, |ctx| {
                    ctx.direct_call();
                    body(ctx, fid);
                    ctx.ret();
                });
                remaining &= !m;
            }
        }
        assert_eq!(remaining, 0, "lane with unregistered type in branch_call");
    }
}

/// Writes kernel `k`'s constant-memory function table and returns its
/// base address.
fn materialize_const_table(
    mem: &mut DeviceMemory,
    registry: &TypeRegistry,
    kernel: usize,
) -> VirtAddr {
    let total_slots: u64 = registry
        .type_ids()
        .map(|t| registry.num_slots(t) as u64)
        .sum();
    let base = mem.reserve(total_slots * 8, 256);
    let mut g = 0u64;
    for t in registry.type_ids() {
        for slot in 0..registry.num_slots(t) {
            let fid = registry.vfunc(t, slot);
            mem.write_u64(base.offset(g * 8), code_addr(fid, kernel).raw())
                .expect("const table write");
            g += 1;
        }
    }
    base
}

/// Synthetic instruction-memory address of a function body inside
/// `kernel`'s embedded code.
fn code_addr(fid: FuncId, kernel: usize) -> VirtAddr {
    VirtAddr::new(CODE_BASE + ((kernel as u64) << CODE_KERNEL_SHIFT) + fid.0 as u64 * CODE_STRIDE)
}

/// Inverse of [`code_addr`], ignoring which kernel's copy was called.
///
/// # Panics
/// Panics if `code` is not a valid code address (corrupt tables).
fn decode_code_addr(code: u64) -> FuncId {
    let off = code.wrapping_sub(CODE_BASE) & ((1 << CODE_KERNEL_SHIFT) - 1);
    assert!(
        code >= CODE_BASE && off % CODE_STRIDE == 0,
        "indirect call to non-code address {code:#x}"
    );
    FuncId((off / CODE_STRIDE) as u32)
}

/// Groups currently-active lanes by resolved callee — the SIMT stack's
/// partition of a divergent indirect branch, ascending by [`FuncId`].
fn group_lanes(ctx: &WarpCtx<'_>, fids: &Lanes<FuncId>) -> Vec<(FuncId, u32)> {
    gvf_sim::simt::partition_by(ctx.mask(), fids)
}
