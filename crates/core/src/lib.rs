//! # gvf-core — GPU virtual-function dispatch: COAL and TypePointer
//!
//! The primary contribution of *"Judging a Type by Its Pointer:
//! Optimizing GPU Virtual Functions"* (Zhang, Alawneh & Rogers,
//! ASPLOS 2021), reproduced in Rust over the `gvf-mem`/`gvf-sim`
//! substrates.
//!
//! A C++ virtual call on a GPU costs three steps (paper Fig. 1):
//! **A** load the object's embedded vTable pointer (diverged — one
//! transaction per object), **B** load the virtual function pointer from
//! the vTable (converged per type), **C** indirect call. Step A is ~87%
//! of the direct cost on a V100. This crate implements every dispatch
//! scheme the paper compares:
//!
//! | [`Strategy`] | resolves the type by | A's memory traffic |
//! |---|---|---|
//! | `Cuda` / `SharedOa` | dereferencing the object | ∝ objects |
//! | `Concord` | an embedded type tag | ∝ objects |
//! | `Coal` | a segment-tree walk over the allocator's address ranges | ∝ log(types), converged |
//! | `TypePointerProto` / `TypePointerHw` | 15 tag bits in the pointer itself | **zero** |
//! | `Branch` | register values (microbenchmark ideal) | zero |
//!
//! ```
//! use gvf_alloc::{DeviceAllocator, SharedOa};
//! use gvf_core::{CallSite, DeviceProgram, FuncId, Strategy, TypeRegistry};
//! use gvf_mem::DeviceMemory;
//! use gvf_sim::{lanes_from_fn, run_kernel};
//!
//! let mut mem = DeviceMemory::with_capacity(1 << 22);
//! let mut reg = TypeRegistry::new();
//! let cat = reg.add_type("Cat", 16, &[FuncId(0)]);
//! let dog = reg.add_type("Dog", 16, &[FuncId(1)]);
//!
//! let mut prog = DeviceProgram::new(&mut mem, &reg, Strategy::Coal);
//! let mut alloc = SharedOa::new();
//! prog.register_types(&mut alloc);
//! let pets: Vec<_> = (0..64)
//!     .map(|i| prog.construct(&mut mem, &mut alloc, if i % 2 == 0 { cat } else { dog }))
//!     .collect();
//! prog.finalize_ranges(&mut mem, &alloc);
//!
//! let mut sounds = [0u32; 2];
//! run_kernel(&mut mem, 64, |w| {
//!     let objs = lanes_from_fn(|l| pets.get(w.thread_id(l)).copied());
//!     prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
//!         sounds[fid.0 as usize] += w.mask().count_ones();
//!         w.alu(1);
//!     });
//! });
//! assert_eq!(sounds, [32, 32]); // every cat meowed, every dog barked
//! ```

// Lane-indexed loops over parallel per-lane arrays are the natural way
// to write SIMT-style code; iterator adaptors obscure the lane index.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod program;
mod registry;
mod segtree;
mod strategy;

pub use program::{CallSite, DeviceProgram, LookupAttrib, LookupKind, TagAttrib, TagMode, NO_TAG};
pub use registry::{FuncId, TypeId, TypeRegistry};
pub use segtree::{LinearRangeTable, ResolvedRange, SegmentTree};
pub use strategy::{ParseStrategyError, Strategy};
