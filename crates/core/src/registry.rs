//! Type registry: the class hierarchy metadata the "compiler" knows.

use std::fmt;

/// Identifier of a registered object type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a virtual-function *implementation* (what an entry in a
/// vTable ultimately names). Workloads give their function bodies stable
/// `FuncId`s and match on them when a dispatched call lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct TypeInfo {
    pub name: String,
    pub field_bytes: u64,
    pub vfuncs: Vec<FuncId>,
}

/// Registry of all concrete object types in a program, with their field
/// footprints and vTable contents.
///
/// This plays the role of the C++ front-end: it knows, for every concrete
/// type, which implementation each virtual slot binds to. Abstract base
/// classes do not appear — only instantiable types do, exactly the set a
/// vTable exists for.
///
/// ```
/// use gvf_core::{FuncId, TypeRegistry};
/// let mut reg = TypeRegistry::new();
/// let sphere = reg.add_type("Sphere", 32, &[FuncId(0), FuncId(2)]);
/// let plane = reg.add_type("Plane", 24, &[FuncId(1), FuncId(2)]);
/// assert_eq!(reg.vfunc(sphere, 0), FuncId(0));
/// assert_eq!(reg.vfunc(plane, 0), FuncId(1));
/// assert_eq!(reg.num_types(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TypeRegistry {
    types: Vec<TypeInfo>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers a concrete type with `field_bytes` of member data
    /// (headers excluded) and one [`FuncId`] per virtual slot.
    ///
    /// # Panics
    /// Panics if `vfuncs` is empty — a type with no virtual functions
    /// has no business in a vTable study.
    pub fn add_type(&mut self, name: &str, field_bytes: u64, vfuncs: &[FuncId]) -> TypeId {
        assert!(!vfuncs.is_empty(), "type {name} has no virtual functions");
        let id = TypeId(self.types.len() as u32);
        self.types.push(TypeInfo {
            name: name.to_owned(),
            field_bytes,
            vfuncs: vfuncs.to_vec(),
        });
        id
    }

    /// Number of registered types (Table 2's `# Types` counts these plus
    /// abstract bases; we report concrete types).
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// All type ids in registration order.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// The type's name.
    ///
    /// # Panics
    /// Panics if `t` is not from this registry.
    pub fn name(&self, t: TypeId) -> &str {
        &self.info(t).name
    }

    /// Member-data size in bytes (headers excluded).
    ///
    /// # Panics
    /// Panics if `t` is not from this registry.
    pub fn field_bytes(&self, t: TypeId) -> u64 {
        self.info(t).field_bytes
    }

    /// Number of virtual slots in `t`'s vTable.
    ///
    /// # Panics
    /// Panics if `t` is not from this registry.
    pub fn num_slots(&self, t: TypeId) -> usize {
        self.info(t).vfuncs.len()
    }

    /// The implementation bound to virtual slot `slot` of type `t`.
    ///
    /// # Panics
    /// Panics if `t` or `slot` is out of range.
    pub fn vfunc(&self, t: TypeId, slot: usize) -> FuncId {
        self.info(t).vfuncs[slot]
    }

    /// Total virtual-function pointers across all vTables (Table 2's
    /// `# vFuncs` analogue for our ports).
    pub fn total_vfunc_entries(&self) -> usize {
        self.types.iter().map(|t| t.vfuncs.len()).sum()
    }

    /// Types that implement `slot` (candidates for a Concord switch at a
    /// call site with no static narrowing).
    pub fn candidates_for_slot(&self, slot: usize) -> Vec<TypeId> {
        self.type_ids()
            .filter(|&t| slot < self.num_slots(t))
            .collect()
    }

    pub(crate) fn info(&self, t: TypeId) -> &TypeInfo {
        &self.types[t.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_lookup() {
        let mut r = TypeRegistry::new();
        let a = r.add_type("A", 16, &[FuncId(0), FuncId(1)]);
        let b = r.add_type("B", 24, &[FuncId(2)]);
        assert_eq!(r.num_types(), 2);
        assert_eq!(r.name(a), "A");
        assert_eq!(r.field_bytes(b), 24);
        assert_eq!(r.num_slots(a), 2);
        assert_eq!(r.vfunc(a, 1), FuncId(1));
        assert_eq!(r.total_vfunc_entries(), 3);
    }

    #[test]
    fn candidates_respect_slot_count() {
        let mut r = TypeRegistry::new();
        let a = r.add_type("A", 8, &[FuncId(0), FuncId(1)]);
        let b = r.add_type("B", 8, &[FuncId(2)]);
        assert_eq!(r.candidates_for_slot(0), vec![a, b]);
        assert_eq!(r.candidates_for_slot(1), vec![a]);
        assert!(r.candidates_for_slot(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "no virtual functions")]
    fn empty_vtable_rejected() {
        TypeRegistry::new().add_type("Bad", 8, &[]);
    }
}
