//! The dispatch strategies compared in the paper.

use gvf_alloc::AllocatorKind;
use std::fmt;

/// A virtual-function dispatch strategy (the bars of Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Contemporary CUDA: embedded vTable pointer per object, dispatched
    /// with `LDG vTable*; LDG vFunc*; LDC; CALL`, objects placed by the
    /// default device heap.
    Cuda,
    /// Intel Concord's type-tag + switch-statement lowering: a tag field
    /// embedded in each object selects a compare/branch chain with
    /// statically-known targets (no true dynamic dispatch).
    Concord,
    /// CUDA dispatch over the type-based SharedOA allocator — isolates
    /// the allocator's packing benefit (§8.2).
    SharedOa,
    /// **COAL** (§5): SharedOA placement plus a compiler-inserted segment
    /// tree walk that maps the object *address* to its vTable without
    /// touching the object.
    Coal,
    /// **TypePointer**, software prototype (§6.3): the vTable offset
    /// rides in the pointer's unused upper 15 bits; extra mask
    /// instructions strip it at each member access so a stock MMU never
    /// sees tag bits. This is what the paper runs on silicon.
    TypePointerProto,
    /// **TypePointer** with the proposed MMU change (§6.3): tag bits are
    /// ignored by hardware, so member accesses carry no masking overhead.
    /// This is what the paper runs in simulation (Fig. 11).
    TypePointerHw,
    /// The idealized microbenchmark baseline of §8.3: per-lane "types"
    /// live in registers and dispatch is a pure compare/branch chain with
    /// no objects and no memory.
    Branch,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
        Strategy::Branch,
    ];

    /// The five strategies of the main evaluation (Figs. 6–9), in bar
    /// order: CUDA, Concord, SharedOA, COAL, TypePointer.
    pub const EVALUATED: [Strategy; 5] = [
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
    ];

    /// The allocator this strategy uses by default. TypePointer is
    /// allocator-independent (§6.1); its default pairs it with SharedOA
    /// as in §8.1, and Fig. 11 overrides it with the CUDA heap.
    pub fn default_allocator(self) -> AllocatorKind {
        match self {
            Strategy::Cuda | Strategy::Concord => AllocatorKind::Cuda,
            _ => AllocatorKind::SharedOa,
        }
    }

    /// Bytes of per-object header this strategy's object model needs.
    ///
    /// - CUDA C++: one embedded vTable pointer;
    /// - Concord: a 4-byte type tag (padded to 8 for alignment);
    /// - SharedOA-family (`sharedNew`, §4): a CPU vTable pointer *and* a
    ///   GPU vTable pointer.
    pub fn header_bytes(self) -> u64 {
        match self {
            Strategy::Cuda => 8,
            Strategy::Concord => 8,
            Strategy::Branch => 0,
            _ => 16,
        }
    }

    /// Byte offset of the GPU vTable pointer within the object header,
    /// for the strategies that embed one.
    pub fn gpu_vptr_offset(self) -> Option<u64> {
        match self {
            Strategy::Cuda => Some(0),
            Strategy::Concord | Strategy::Branch => None,
            // sharedNew stores the CPU vptr first, the GPU vptr second.
            _ => Some(8),
        }
    }

    /// Whether object pointers carry a TypePointer tag.
    pub fn uses_tagged_pointers(self) -> bool {
        matches!(self, Strategy::TypePointerProto | Strategy::TypePointerHw)
    }

    /// Whether member accesses must mask tag bits in software (the
    /// prototype overhead of §6.3).
    pub fn member_mask_alu(self) -> u16 {
        match self {
            Strategy::TypePointerProto => 1,
            _ => 0,
        }
    }

    /// Short name used in harness output (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Cuda => "CUDA",
            Strategy::Concord => "Concord",
            Strategy::SharedOa => "SharedOA",
            Strategy::Coal => "COAL",
            Strategy::TypePointerProto => "TypePointer",
            Strategy::TypePointerHw => "TypePointer(HW)",
            Strategy::Branch => "BRANCH",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Strategy {
    type Err = ParseStrategyError;

    /// Parses a strategy label, case-insensitively; accepts the paper's
    /// names plus the shorthands `tp` (prototype) and `tphw`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Strategy::ALL
            .into_iter()
            .find(|x| x.label().eq_ignore_ascii_case(s))
            .or(match lower.as_str() {
                "tp" | "typepointer" => Some(Strategy::TypePointerProto),
                "tphw" | "typepointer(hw)" => Some(Strategy::TypePointerHw),
                "sharedoa" | "shared" => Some(Strategy::SharedOa),
                _ => None,
            })
            .ok_or(ParseStrategyError)
    }
}

/// Error returned when a strategy label cannot be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseStrategyError;

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("unknown dispatch strategy name")
    }
}

impl std::error::Error for ParseStrategyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allocators() {
        assert_eq!(Strategy::Cuda.default_allocator(), AllocatorKind::Cuda);
        assert_eq!(Strategy::Concord.default_allocator(), AllocatorKind::Cuda);
        assert_eq!(
            Strategy::SharedOa.default_allocator(),
            AllocatorKind::SharedOa
        );
        assert_eq!(Strategy::Coal.default_allocator(), AllocatorKind::SharedOa);
        assert_eq!(
            Strategy::TypePointerHw.default_allocator(),
            AllocatorKind::SharedOa
        );
    }

    #[test]
    fn headers() {
        assert_eq!(Strategy::Cuda.header_bytes(), 8);
        assert_eq!(Strategy::Concord.header_bytes(), 8);
        assert_eq!(Strategy::Coal.header_bytes(), 16);
        assert_eq!(Strategy::Cuda.gpu_vptr_offset(), Some(0));
        assert_eq!(Strategy::SharedOa.gpu_vptr_offset(), Some(8));
        assert_eq!(Strategy::Concord.gpu_vptr_offset(), None);
    }

    #[test]
    fn parse_labels_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.label().parse::<Strategy>().unwrap(), s);
        }
        assert_eq!(
            "tp".parse::<Strategy>().unwrap(),
            Strategy::TypePointerProto
        );
        assert_eq!("coal".parse::<Strategy>().unwrap(), Strategy::Coal);
        assert!("warp-drive".parse::<Strategy>().is_err());
    }

    #[test]
    fn proto_masks_members() {
        assert_eq!(Strategy::TypePointerProto.member_mask_alu(), 1);
        assert_eq!(Strategy::TypePointerHw.member_mask_alu(), 0);
        assert!(Strategy::TypePointerProto.uses_tagged_pointers());
        assert!(!Strategy::Coal.uses_tagged_pointers());
    }
}
