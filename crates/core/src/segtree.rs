//! The COAL range-lookup structures: a balanced segment tree
//! (paper Algorithm 1) and a linear-scan alternative used as an ablation.

use gvf_mem::{DeviceMemory, VirtAddr};
use gvf_sim::{lanes_from_fn, AccessTag, Lanes, LogHist, WarpCtx, WARP_SIZE};
use std::cell::Cell;

/// One row of the virtual range table, resolved to a vTable address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedRange {
    /// First byte of the range.
    pub lo: u64,
    /// One past the last byte.
    pub hi: u64,
    /// Address of the vTable shared by every object in the range.
    pub vtable: VirtAddr,
}

/// The segment tree COAL's compiler-generated lookup walks (§5).
///
/// Leaves hold one `(base, range)` per allocator region; internal nodes
/// hold the address boundaries of their two children, laid out as an
/// implicit binary heap in device memory (32 bytes per node, one cache
/// sector). Because the tree is padded to a power of two, every lookup
/// walks exactly `ceil(log2(K))` levels — the `O(log2 K)` of Algorithm 1.
///
/// The tree is tiny and shared by *all* threads, which is the crux of
/// COAL: lookup loads are converged and hit in L1, unlike the per-object
/// diverged vTable-pointer load they replace.
#[derive(Clone, Debug)]
pub struct SegmentTree {
    node_base: VirtAddr,
    leaf_base: VirtAddr,
    internal_count: usize,
    depth: u32,
    host_ranges: Vec<ResolvedRange>,
    /// Host mirror of node contents: (llo, lhi, rlo, rhi).
    host_nodes: Vec<[u64; 4]>,
    /// Host mirror of leaf vTable addresses (0 = padding leaf).
    host_leaves: Vec<u64>,
    /// Dispatches that walked the tree ([`emit_walk`](Self::emit_walk)
    /// calls with ≥ 1 participating lane). Interior-mutable so the
    /// read-only emit path can count itself.
    walks: Cell<u64>,
    /// Lanes that participated across all walks.
    walk_lanes: Cell<u64>,
}

impl SegmentTree {
    /// Bytes per internal node in device memory.
    pub const NODE_BYTES: u64 = 32;
    /// Bytes per leaf entry in device memory.
    pub const LEAF_BYTES: u64 = 8;

    /// Builds and materializes the tree over `ranges` (need not be
    /// sorted; must be non-overlapping and non-empty).
    ///
    /// # Panics
    /// Panics if `ranges` is empty or contains overlapping entries.
    pub fn build(mem: &mut DeviceMemory, ranges: &[ResolvedRange]) -> Self {
        assert!(!ranges.is_empty(), "segment tree over zero ranges");
        let mut sorted = ranges.to_vec();
        sorted.sort_by_key(|r| r.lo);
        for w in sorted.windows(2) {
            assert!(
                w[0].hi <= w[1].lo,
                "overlapping ranges {:?} / {:?}",
                w[0],
                w[1]
            );
        }

        let leaf_count = sorted.len().next_power_of_two();
        let depth = leaf_count.trailing_zeros();
        let internal_count = leaf_count - 1;

        // Coverage of conceptual heap node i (leaves are nodes
        // internal_count..internal_count+leaf_count).
        let total = internal_count + leaf_count;
        let mut cover = vec![(u64::MAX, u64::MAX); total]; // empty
        let mut host_leaves = vec![0u64; leaf_count];
        for (k, r) in sorted.iter().enumerate() {
            cover[internal_count + k] = (r.lo, r.hi);
            host_leaves[k] = r.vtable.raw();
        }
        let mut host_nodes = vec![[u64::MAX, u64::MAX, u64::MAX, u64::MAX]; internal_count];
        for i in (0..internal_count).rev() {
            let l = cover[2 * i + 1];
            let r = cover[2 * i + 2];
            host_nodes[i] = [l.0, l.1, r.0, r.1];
            let lo = l.0.min(r.0);
            let hi = if l.1 == u64::MAX && r.1 == u64::MAX {
                u64::MAX
            } else {
                let lh = if l.1 == u64::MAX { 0 } else { l.1 };
                let rh = if r.1 == u64::MAX { 0 } else { r.1 };
                lh.max(rh)
            };
            cover[i] = (lo, hi);
        }

        let node_base = mem.reserve((internal_count.max(1) as u64) * Self::NODE_BYTES, 256);
        let leaf_base = mem.reserve(leaf_count as u64 * Self::LEAF_BYTES, 256);
        for (i, n) in host_nodes.iter().enumerate() {
            let a = node_base.offset(i as u64 * Self::NODE_BYTES);
            for (j, v) in n.iter().enumerate() {
                mem.write_u64(a.offset(j as u64 * 8), *v)
                    .expect("tree node write");
            }
        }
        for (k, v) in host_leaves.iter().enumerate() {
            mem.write_u64(leaf_base.offset(k as u64 * Self::LEAF_BYTES), *v)
                .expect("tree leaf write");
        }

        SegmentTree {
            node_base,
            leaf_base,
            internal_count,
            depth,
            host_ranges: sorted,
            host_nodes,
            host_leaves,
            walks: Cell::new(0),
            walk_lanes: Cell::new(0),
        }
    }

    /// Dispatches that walked the tree since construction. Every walk
    /// visits exactly [`depth`](Self::depth) levels (the tree is padded
    /// to a power of two), so per-dispatch walk-depth and
    /// comparison-count histograms are fully determined by this counter
    /// and the depth.
    pub fn walks(&self) -> u64 {
        self.walks.get()
    }

    /// Total participating lanes across all walks.
    pub fn walk_lanes(&self) -> u64 {
        self.walk_lanes.get()
    }

    /// Number of real (non-padding) ranges.
    pub fn num_ranges(&self) -> usize {
        self.host_ranges.len()
    }

    /// Walk depth (`ceil(log2(K))` for `K` padded leaves).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Host-side lookup (reference implementation for validation).
    pub fn lookup(&self, addr: VirtAddr) -> Option<VirtAddr> {
        let a = addr.canonical();
        let mut node = 0usize;
        if self.internal_count == 0 {
            let r = self.host_ranges.first()?;
            return (a >= r.lo && a < r.hi).then_some(r.vtable);
        }
        loop {
            let [llo, lhi, rlo, rhi] = self.host_nodes[node];
            let next = if a >= llo && a < lhi {
                2 * node + 1
            } else if a >= rlo && a < rhi {
                2 * node + 2
            } else {
                return None;
            };
            if next >= self.internal_count {
                let leaf = next - self.internal_count;
                let v = self.host_leaves[leaf];
                return (v != 0).then_some(VirtAddr::new(v));
            }
            node = next;
        }
    }

    /// Emits the device-side walk for all active lanes with a `Some`
    /// address, returning each lane's vTable address.
    ///
    /// Per level this issues the node fetch (one vectorized access to
    /// the 32-byte node — a single sector), the two range compares, and
    /// the loop branch; then the leaf fetch. Lanes walking
    /// different paths still touch the same small arrays, which is why
    /// these loads coalesce and hit (§5, Fig. 9).
    ///
    /// # Panics
    /// Panics if any participating lane's address is outside every range
    /// (the NULL return of Algorithm 1 — a broken allocator/tree).
    pub fn emit_walk(&self, ctx: &mut WarpCtx<'_>, objs: &Lanes<VirtAddr>) -> Lanes<VirtAddr> {
        let _walk = gvf_sim::spans::span("core.segtree_walk");
        let mut node: [usize; WARP_SIZE] = [0; WARP_SIZE];
        let participating: Vec<usize> = (0..WARP_SIZE)
            .filter(|&i| ctx.is_active(i) && objs[i].is_some())
            .collect();
        if !participating.is_empty() {
            self.walks.set(self.walks.get() + 1);
            self.walk_lanes
                .set(self.walk_lanes.get() + participating.len() as u64);
        }

        if self.internal_count > 0 {
            for _level in 0..self.depth {
                // Node fetch: one vectorized access covering the 32-byte
                // node (a single sector transaction).
                let node_addrs = lanes_from_fn(|i| {
                    (ctx.is_active(i) && objs[i].is_some())
                        .then(|| self.node_base.offset(node[i] as u64 * Self::NODE_BYTES))
                });
                ctx.ld(AccessTag::RangeWalk, 8, &node_addrs);
                ctx.alu(4); // next-node address math + two in-range tests
                ctx.branch(); // loop/descend branch
                for &i in &participating {
                    let a = objs[i].expect("participating lane").canonical();
                    let [llo, lhi, rlo, rhi] = self.host_nodes[node[i]];
                    node[i] = if a >= llo && a < lhi {
                        2 * node[i] + 1
                    } else if a >= rlo && a < rhi {
                        2 * node[i] + 2
                    } else {
                        panic!("address {a:#x} outside every range (NULL lookup)")
                    };
                }
            }
        }

        // Leaf fetch: the range's vTable pointer.
        let leaf_addrs = lanes_from_fn(|i| {
            (ctx.is_active(i) && objs[i].is_some()).then(|| {
                let leaf = if self.internal_count == 0 {
                    0
                } else {
                    node[i] - self.internal_count
                };
                self.leaf_base.offset(leaf as u64 * Self::LEAF_BYTES)
            })
        });
        let vt = ctx.ld(AccessTag::RangeWalk, 8, &leaf_addrs);
        lanes_from_fn(|i| {
            vt[i].map(|v| {
                assert_ne!(v, 0, "padding leaf reached (NULL lookup)");
                VirtAddr::new(v)
            })
        })
    }
}

/// Linear-scan alternative to [`SegmentTree`]: tests the object address
/// against each range in turn. `O(K)` — the ablation showing why the
/// paper organizes ranges as a tree.
#[derive(Clone, Debug)]
pub struct LinearRangeTable {
    entry_base: VirtAddr,
    host_ranges: Vec<ResolvedRange>,
    /// Dispatches that scanned the table (≥ 1 participating lane).
    scans: Cell<u64>,
    /// Lanes that participated across all scans.
    scan_lanes: Cell<u64>,
    /// Histogram of entries examined per scan — data-dependent, unlike
    /// the tree's constant depth (the `O(K)` the ablation measures).
    entries_scanned: Cell<LogHist>,
}

impl LinearRangeTable {
    /// Bytes per table entry (lo, hi, vtable, pad).
    pub const ENTRY_BYTES: u64 = 32;

    /// Materializes the table over `ranges`.
    ///
    /// # Panics
    /// Panics if `ranges` is empty.
    pub fn build(mem: &mut DeviceMemory, ranges: &[ResolvedRange]) -> Self {
        assert!(!ranges.is_empty(), "linear table over zero ranges");
        let mut sorted = ranges.to_vec();
        sorted.sort_by_key(|r| r.lo);
        let entry_base = mem.reserve(sorted.len() as u64 * Self::ENTRY_BYTES, 256);
        for (k, r) in sorted.iter().enumerate() {
            let a = entry_base.offset(k as u64 * Self::ENTRY_BYTES);
            mem.write_u64(a, r.lo).expect("entry write");
            mem.write_u64(a.offset(8), r.hi).expect("entry write");
            mem.write_u64(a.offset(16), r.vtable.raw())
                .expect("entry write");
        }
        LinearRangeTable {
            entry_base,
            host_ranges: sorted,
            scans: Cell::new(0),
            scan_lanes: Cell::new(0),
            entries_scanned: Cell::new(LogHist::new()),
        }
    }

    /// Number of table entries.
    pub fn num_ranges(&self) -> usize {
        self.host_ranges.len()
    }

    /// Dispatches that scanned the table since construction.
    pub fn scans(&self) -> u64 {
        self.scans.get()
    }

    /// Total participating lanes across all scans.
    pub fn scan_lanes(&self) -> u64 {
        self.scan_lanes.get()
    }

    /// Histogram of entries examined per scan (early exit once every
    /// lane matched).
    pub fn entries_scanned(&self) -> LogHist {
        self.entries_scanned.get()
    }

    /// Host-side lookup.
    pub fn lookup(&self, addr: VirtAddr) -> Option<VirtAddr> {
        let a = addr.canonical();
        self.host_ranges
            .iter()
            .find(|r| a >= r.lo && a < r.hi)
            .map(|r| r.vtable)
    }

    /// Emits the device-side scan; entries are tested in order until
    /// every lane has matched.
    ///
    /// # Panics
    /// Panics if a participating lane matches no range.
    pub fn emit_scan(&self, ctx: &mut WarpCtx<'_>, objs: &Lanes<VirtAddr>) -> Lanes<VirtAddr> {
        let mut out = gvf_sim::lanes_none();
        let mut remaining: u32 = 0;
        for i in 0..WARP_SIZE {
            if ctx.is_active(i) && objs[i].is_some() {
                remaining |= 1 << i;
            }
        }
        if remaining != 0 {
            self.scans.set(self.scans.get() + 1);
            self.scan_lanes
                .set(self.scan_lanes.get() + remaining.count_ones() as u64);
        }
        let mut examined: u64 = 0;
        for (k, r) in self.host_ranges.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            examined += 1;
            let a = self.entry_base.offset(k as u64 * Self::ENTRY_BYTES);
            let addrs = lanes_from_fn(|i| ((remaining >> i) & 1 == 1).then_some(a));
            ctx.ld(AccessTag::RangeWalk, 8, &addrs);
            ctx.ld(
                AccessTag::RangeWalk,
                8,
                &lanes_from_fn(|i| addrs[i].map(|x| x.offset(8))),
            );
            ctx.alu(2);
            ctx.branch();
            for i in 0..WARP_SIZE {
                if (remaining >> i) & 1 == 0 {
                    continue;
                }
                let oa = objs[i].expect("participating lane").canonical();
                if oa >= r.lo && oa < r.hi {
                    out[i] = Some(r.vtable);
                    remaining &= !(1 << i);
                }
            }
        }
        assert_eq!(remaining, 0, "lanes left unmatched by range scan");
        if examined > 0 {
            let mut h = self.entries_scanned.get();
            h.record(examined);
            self.entries_scanned.set(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvf_sim::run_kernel;

    fn ranges() -> Vec<ResolvedRange> {
        vec![
            ResolvedRange {
                lo: 0x1000,
                hi: 0x2000,
                vtable: VirtAddr::new(0xa0),
            },
            ResolvedRange {
                lo: 0x3000,
                hi: 0x3800,
                vtable: VirtAddr::new(0xb0),
            },
            ResolvedRange {
                lo: 0x5000,
                hi: 0x9000,
                vtable: VirtAddr::new(0xc0),
            },
        ]
    }

    #[test]
    fn host_lookup_matches_ranges() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        assert_eq!(t.lookup(VirtAddr::new(0x1000)), Some(VirtAddr::new(0xa0)));
        assert_eq!(t.lookup(VirtAddr::new(0x1fff)), Some(VirtAddr::new(0xa0)));
        assert_eq!(t.lookup(VirtAddr::new(0x3400)), Some(VirtAddr::new(0xb0)));
        assert_eq!(t.lookup(VirtAddr::new(0x8fff)), Some(VirtAddr::new(0xc0)));
        assert_eq!(t.lookup(VirtAddr::new(0x2800)), None); // gap
        assert_eq!(t.lookup(VirtAddr::new(0x9000)), None); // one past end
    }

    #[test]
    fn single_range_tree() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let only = vec![ResolvedRange {
            lo: 0x100,
            hi: 0x200,
            vtable: VirtAddr::new(0x42),
        }];
        let t = SegmentTree::build(&mut mem, &only);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.lookup(VirtAddr::new(0x150)), Some(VirtAddr::new(0x42)));
        assert_eq!(t.lookup(VirtAddr::new(0x250)), None);
    }

    #[test]
    fn depth_is_log2() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let rs: Vec<ResolvedRange> = (0..5)
            .map(|i| ResolvedRange {
                lo: 0x1000 * (i + 1),
                hi: 0x1000 * (i + 1) + 0x800,
                vtable: VirtAddr::new(0x10 + i),
            })
            .collect();
        let t = SegmentTree::build(&mut mem, &rs);
        assert_eq!(t.num_ranges(), 5);
        assert_eq!(t.depth(), 3); // padded to 8 leaves
    }

    #[test]
    fn emitted_walk_matches_host_lookup() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        let probe: Vec<u64> = (0..32)
            .map(|i| [0x1100, 0x3100, 0x5100, 0x1e00][i % 4] + (i as u64) * 8)
            .collect();
        let expected: Vec<Option<VirtAddr>> =
            probe.iter().map(|&a| t.lookup(VirtAddr::new(a))).collect();
        assert!(expected.iter().all(|e| e.is_some()));
        run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|i| Some(VirtAddr::new(probe[i])));
            let got = t.emit_walk(w, &objs);
            for i in 0..32 {
                assert_eq!(got[i], expected[i], "lane {i}");
            }
        });
    }

    #[test]
    fn walk_emits_log_levels_of_loads() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges()); // depth 2
        let k = run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|_| Some(VirtAddr::new(0x1100)));
            t.emit_walk(w, &objs);
        });
        // 1 node load per level x 2 levels + 1 leaf load = 3 memory ops.
        assert_eq!(k.warps[0].dyn_instrs_of(gvf_sim::InstrClass::Mem), 3);
    }

    #[test]
    #[should_panic(expected = "NULL lookup")]
    fn walk_panics_on_unowned_address() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|_| Some(VirtAddr::new(0x2800)));
            t.emit_walk(w, &objs);
        });
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_ranges_rejected() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let bad = vec![
            ResolvedRange {
                lo: 0x1000,
                hi: 0x2000,
                vtable: VirtAddr::new(1),
            },
            ResolvedRange {
                lo: 0x1800,
                hi: 0x2800,
                vtable: VirtAddr::new(2),
            },
        ];
        SegmentTree::build(&mut mem, &bad);
    }

    #[test]
    fn linear_scan_agrees_with_tree() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        let l = LinearRangeTable::build(&mut mem, &ranges());
        for a in [0x1000u64, 0x1abc, 0x3400, 0x37ff, 0x5000, 0x8123] {
            assert_eq!(
                t.lookup(VirtAddr::new(a)),
                l.lookup(VirtAddr::new(a)),
                "{a:#x}"
            );
        }
        run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|i| Some(VirtAddr::new(0x5000 + i as u64 * 16)));
            let got = l.emit_scan(w, &objs);
            assert!(got.iter().take(32).all(|v| *v == Some(VirtAddr::new(0xc0))));
        });
    }

    #[test]
    fn walk_and_scan_counters_accumulate() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        let l = LinearRangeTable::build(&mut mem, &ranges());
        assert_eq!((t.walks(), t.walk_lanes()), (0, 0));
        assert_eq!((l.scans(), l.scan_lanes()), (0, 0));
        assert!(l.entries_scanned().is_empty());
        run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|i| (i < 7).then_some(VirtAddr::new(0x1100)));
            t.emit_walk(w, &objs);
            t.emit_walk(w, &objs);
            l.emit_scan(w, &objs);
            // 0x5100 lives in the *last* sorted range: full scan.
            let far = lanes_from_fn(|i| (i < 2).then_some(VirtAddr::new(0x5100)));
            l.emit_scan(w, &far);
        });
        assert_eq!(t.walks(), 2);
        assert_eq!(t.walk_lanes(), 14);
        assert_eq!(l.scans(), 2);
        assert_eq!(l.scan_lanes(), 9);
        let h = l.entries_scanned();
        assert_eq!(h.total(), 2);
        // First scan matched in entry 1, second needed all 3 entries.
        assert_eq!(h.counts()[LogHist::bucket_of(1)], 1);
        assert_eq!(h.counts()[LogHist::bucket_of(3)], 1);
    }

    #[test]
    fn tagged_addresses_resolve_canonically() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let t = SegmentTree::build(&mut mem, &ranges());
        let tagged = VirtAddr::new(0x3100).with_tag(99);
        assert_eq!(t.lookup(tagged), Some(VirtAddr::new(0xb0)));
    }
}
