//! The TypePointer corner cases of paper §6.4: programs that manipulate
//! pointer bits, abuse casts, or mix allocators can break TypePointer —
//! exactly as the paper warns. These tests pin down the failure modes
//! (and the ones that *stay* correct).

use gvf_alloc::{CudaHeapAllocator, DeviceAllocator, SharedOa};
use gvf_core::{CallSite, DeviceProgram, FuncId, Strategy, TypeRegistry};
use gvf_mem::{DeviceMemory, MmuMode, VirtAddr};
use gvf_sim::{lanes_from_fn, run_kernel};

fn setup(strategy: Strategy) -> (DeviceMemory, DeviceProgram, SharedOa, Vec<VirtAddr>) {
    let mut mem = DeviceMemory::with_capacity(32 << 20);
    let mut reg = TypeRegistry::new();
    let a = reg.add_type("A", 16, &[FuncId(1)]);
    let b = reg.add_type("B", 16, &[FuncId(2)]);
    let prog = DeviceProgram::new(&mut mem, &reg, strategy);
    let mut alloc = SharedOa::new();
    prog.register_types(&mut alloc);
    let objs: Vec<_> = (0..64)
        .map(|i| prog.construct(&mut mem, &mut alloc, if i % 2 == 0 { a } else { b }))
        .collect();
    (mem, prog, alloc, objs)
}

/// §6.4 case (1): clobbering the upper 15 bits of the pointer re-types
/// the object — dispatch silently calls the wrong function.
#[test]
fn clobbered_tag_bits_dispatch_wrong_function() {
    let (mut mem, prog, _alloc, objs) = setup(Strategy::TypePointerHw);
    let a_obj = objs[0]; // type A, FuncId(1)
    let b_obj = objs[1]; // type B
                         // "Undefined behaviour in C": copy B's tag onto A's pointer.
    let forged = a_obj.strip_tag().with_tag(b_obj.tag());

    let mut called = None;
    run_kernel(&mut mem, 1, |w| {
        let ptrs = lanes_from_fn(|l| (l == 0).then_some(forged));
        prog.vcall(w, &CallSite::new(0), &ptrs, |_, fid| called = Some(fid));
    });
    assert_eq!(
        called,
        Some(FuncId(2)),
        "forged tag dispatches as type B — the §6.4 hazard"
    );
}

/// The same clobbering is *harmless* under COAL: the type comes from the
/// address range, which the forgery did not change.
#[test]
fn coal_is_immune_to_tag_clobbering() {
    let (mut mem, mut prog, alloc, objs) = setup(Strategy::Coal);
    prog.finalize_ranges(&mut mem, &alloc);
    let forged = objs[0].strip_tag().with_tag(0x1abc);
    let mut called = None;
    run_kernel(&mut mem, 1, |w| {
        let ptrs = lanes_from_fn(|l| (l == 0).then_some(forged));
        prog.vcall(w, &CallSite::new(0), &ptrs, |_, fid| called = Some(fid));
    });
    assert_eq!(
        called,
        Some(FuncId(1)),
        "COAL keys on the address, not the tag"
    );
}

/// §6.4 case (3): an object from a TypePointer-unaware allocator carries
/// no tag, so TypePointer dispatch reads the wrong vTable slot — here it
/// resolves as the type whose vTable sits at offset 0.
#[test]
fn foreign_allocator_objects_mistype() {
    let (mut mem, prog, _alloc, _objs) = setup(Strategy::TypePointerHw);
    let mut foreign = CudaHeapAllocator::new();
    prog.register_types(&mut foreign);
    // Construct "by hand" through the unaware allocator: no tag.
    let raw = foreign.alloc(&mut mem, gvf_alloc::TypeKey(1)); // a B object
    assert!(
        raw.is_canonical(),
        "unaware allocator returns untagged pointers"
    );

    let mut called = None;
    run_kernel(&mut mem, 1, |w| {
        let ptrs = lanes_from_fn(|l| (l == 0).then_some(raw));
        prog.vcall(w, &CallSite::new(0), &ptrs, |_, fid| called = Some(fid));
    });
    // Tag 0 = vTable offset 0 = type A: the B object quacks like an A.
    assert_eq!(
        called,
        Some(FuncId(1)),
        "mixing allocators mistypes objects (§6.4)"
    );
}

/// A strict MMU (no TypePointer hardware) faults the moment a tagged
/// pointer is dereferenced — the reason the software prototype masks
/// bits at member accesses (§6.3).
#[test]
fn strict_mmu_faults_on_tagged_dereference() {
    let (mut mem, _prog, _alloc, objs) = setup(Strategy::TypePointerHw);
    assert_eq!(mem.mmu().mode(), MmuMode::Strict);
    let tagged = objs[1];
    assert_ne!(tagged.tag(), 0);
    assert!(
        mem.read_u64(tagged).is_err(),
        "raw dereference of a tagged pointer traps"
    );
    // The proto's masking (strip_tag) is exactly what avoids the trap.
    assert!(mem.read_u64(tagged.strip_tag()).is_ok());
}

/// Valid programs — no bit games, one allocator — are unaffected: both
/// TypePointer variants agree with the range-based and vptr-based
/// resolutions for every object.
#[test]
fn well_behaved_programs_are_safe() {
    for strategy in [Strategy::TypePointerProto, Strategy::TypePointerHw] {
        let (mut mem, prog, _alloc, objs) = setup(strategy);
        for (i, &o) in objs.iter().enumerate() {
            let t = prog.type_of(&mut mem, o).expect("typed object");
            assert_eq!(t.0 as usize, i % 2);
        }
    }
}
