//! Property tests for the dispatch core: the segment tree agrees with a
//! linear reference on arbitrary disjoint range sets, and every dispatch
//! strategy resolves arbitrary type assignments identically (on the
//! in-repo `gvf-prop` harness; the workspace builds offline).

use gvf_alloc::SharedOa;
use gvf_core::{
    CallSite, DeviceProgram, FuncId, LinearRangeTable, ResolvedRange, SegmentTree,
    Strategy as Dispatch, TypeRegistry,
};
use gvf_mem::{DeviceMemory, VirtAddr};
use gvf_prop::{gen, props, Rng};
use gvf_sim::{lanes_from_fn, run_kernel};

/// Arbitrary disjoint, sorted ranges built from positive gaps/lengths.
fn disjoint_ranges(rng: &mut Rng) -> Vec<ResolvedRange> {
    let parts: Vec<(u64, u64)> = gen::vec(
        |r: &mut Rng| (r.range_u64(1, 5000), r.range_u64(64, 5000)),
        1..24,
    )(rng);
    let mut out = Vec::new();
    let mut cursor = 0x1000u64;
    for (k, (gap, len)) in parts.into_iter().enumerate() {
        let lo = cursor + gap;
        out.push(ResolvedRange {
            lo,
            hi: lo + len,
            vtable: VirtAddr::new(0x10_000 + k as u64 * 8),
        });
        cursor = lo + len;
    }
    out
}

/// Tree lookup == linear lookup for arbitrary probes.
#[test]
fn tree_matches_linear() {
    props!(48, |rng| {
        let ranges = disjoint_ranges(rng);
        let probes = gen::vec(gen::range_u64(0, 60_000), 32..33)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let tree = SegmentTree::build(&mut mem, &ranges);
        let linear = LinearRangeTable::build(&mut mem, &ranges);
        for p in probes {
            let a = VirtAddr::new(p + 0x1000);
            assert_eq!(tree.lookup(a), linear.lookup(a), "probe {p:#x}");
        }
    });
}

/// The emitted device walk agrees with the host lookup for in-range
/// probes.
#[test]
fn device_walk_matches_host() {
    props!(48, |rng| {
        let ranges = disjoint_ranges(rng);
        let picks: Vec<(usize, u64)> =
            gen::vec(|r: &mut Rng| (r.range_usize(0, 24), r.next_u64()), 32..33)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let tree = SegmentTree::build(&mut mem, &ranges);
        let probes: Vec<VirtAddr> = picks
            .iter()
            .map(|&(r, off)| {
                let r = &ranges[r % ranges.len()];
                VirtAddr::new(r.lo + off % (r.hi - r.lo))
            })
            .collect();
        let mut got_all: Vec<Option<VirtAddr>> = vec![None; 32];
        run_kernel(&mut mem, 32, |w| {
            let objs = lanes_from_fn(|l| probes.get(l).copied());
            let got = tree.emit_walk(w, &objs);
            got_all.copy_from_slice(&got[..32]);
        });
        for l in 0..32 {
            assert_eq!(got_all[l], tree.lookup(probes[l]), "lane {l}");
        }
    });
}

/// All object-based strategies dispatch arbitrary type sequences to the
/// same callees.
#[test]
fn strategies_agree_on_arbitrary_hierarchies() {
    props!(48, |rng| {
        let n_types = rng.range_usize(1, 8);
        let assignment = gen::vec(gen::range_u32(0, 8), 32..128)(rng);
        let mut reg = TypeRegistry::new();
        for t in 0..n_types {
            reg.add_type(
                &format!("T{t}"),
                8 + t as u64 * 8,
                &[FuncId(100 + t as u32)],
            );
        }
        let resolve = |strategy: Dispatch| -> Vec<u32> {
            let mut mem = DeviceMemory::with_capacity(1 << 24);
            let mut prog = DeviceProgram::new(&mut mem, &reg, strategy);
            let mut alloc = SharedOa::with_initial_chunk(16);
            prog.register_types(&mut alloc);
            let objs: Vec<_> = assignment
                .iter()
                .map(|&t| {
                    prog.construct(&mut mem, &mut alloc, gvf_core::TypeId(t % n_types as u32))
                })
                .collect();
            prog.finalize_ranges(&mut mem, &alloc);
            let mut out = vec![0u32; objs.len()];
            run_kernel(&mut mem, objs.len(), |w| {
                let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
                prog.vcall(w, &CallSite::new(0), &ptrs, |w, fid| {
                    for l in w.active_lanes().collect::<Vec<_>>() {
                        out[w.warp_id() * 32 + l] = fid.0;
                    }
                });
            });
            out
        };
        let reference = resolve(Dispatch::SharedOa);
        for s in [
            Dispatch::Concord,
            Dispatch::Coal,
            Dispatch::TypePointerProto,
            Dispatch::TypePointerHw,
        ] {
            assert_eq!(resolve(s), reference, "{s} diverged");
        }
    });
}
