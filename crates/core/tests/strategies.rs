//! Cross-strategy integration tests: every dispatch strategy must
//! resolve the same callees (the paper's functional validation, §8), and
//! their memory profiles must have the shapes of Table 1.

use gvf_alloc::{AllocatorKind, CudaHeapAllocator, DeviceAllocator, SharedOa};
use gvf_core::{CallSite, DeviceProgram, FuncId, Strategy, TagMode, TypeId, TypeRegistry};
use gvf_mem::DeviceMemory;
use gvf_sim::{lanes_from_fn, run_kernel, AccessTag, Gpu, GpuConfig, Stats};

const MEOW: FuncId = FuncId(10);
const BARK: FuncId = FuncId(11);
const HISS: FuncId = FuncId(12);
const EAT: FuncId = FuncId(20);

fn registry() -> (TypeRegistry, [TypeId; 3]) {
    let mut reg = TypeRegistry::new();
    let cat = reg.add_type("Cat", 24, &[MEOW, EAT]);
    let dog = reg.add_type("Dog", 32, &[BARK, EAT]);
    let snake = reg.add_type("Snake", 16, &[HISS, EAT]);
    (reg, [cat, dog, snake])
}

fn allocator_for(strategy: Strategy) -> Box<dyn DeviceAllocator> {
    match strategy.default_allocator() {
        AllocatorKind::Cuda => Box::new(CudaHeapAllocator::new()),
        AllocatorKind::SharedOa => Box::new(SharedOa::new()),
    }
}

/// Builds N objects with a type pattern, dispatches slot `slot` for all
/// of them, and returns (per-object callee log, stats).
fn run(strategy: Strategy, n: usize, slot: usize) -> (Vec<FuncId>, Stats) {
    let (reg, tys) = registry();
    let mut mem = DeviceMemory::with_capacity(256 << 20);
    let mut prog = DeviceProgram::new(&mut mem, &reg, strategy);
    let mut alloc = allocator_for(strategy);
    prog.register_types(alloc.as_mut());

    let objs: Vec<_> = (0..n)
        .map(|i| prog.construct(&mut mem, alloc.as_mut(), tys[i % 3]))
        .collect();
    prog.finalize_ranges(&mut mem, alloc.as_ref());

    let mut log = vec![FuncId(u32::MAX); n];
    let kernel = run_kernel(&mut mem, n, |w| {
        let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
        let site = CallSite::new(slot);
        prog.vcall(w, &site, &ptrs, |w, fid| {
            for l in w.active_lanes() {
                log[w.warp_id() * 32 + l] = fid;
            }
            w.alu(2);
        });
    });
    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    (log, stats)
}

#[test]
fn all_strategies_resolve_identical_callees() {
    let n = 200;
    let (reference, _) = run(Strategy::Cuda, n, 0);
    for strategy in [
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
    ] {
        let (log, _) = run(strategy, n, 0);
        assert_eq!(log, reference, "{strategy} diverged from CUDA resolution");
    }
}

#[test]
fn slot_one_resolves_shared_override() {
    // Slot 1 is EAT for every type: a fully converged callee.
    for strategy in [Strategy::Cuda, Strategy::Coal, Strategy::TypePointerHw] {
        let (log, _) = run(strategy, 100, 1);
        assert!(log.iter().all(|&f| f == EAT), "{strategy}");
    }
}

#[test]
fn cuda_vtable_load_is_diverged_coal_is_not() {
    let n = 512;
    let (_, cuda) = run(Strategy::Cuda, n, 0);
    let (_, coal) = run(Strategy::Coal, n, 0);
    let (_, tp) = run(Strategy::TypePointerHw, n, 0);
    // Table 1: CUDA's A-step traffic ∝ objects; COAL replaces it with a
    // converged walk; TypePointer eliminates it.
    assert!(cuda.stall(AccessTag::VtablePtr) > 0);
    assert_eq!(coal.stall(AccessTag::VtablePtr), 0);
    assert_eq!(tp.stall(AccessTag::VtablePtr), 0);
    assert!(coal.stall(AccessTag::RangeWalk) > 0);
    assert_eq!(tp.stall(AccessTag::RangeWalk), 0);
    assert!(tp.global_load_transactions < cuda.global_load_transactions);
}

#[test]
fn concord_has_no_indirect_calls() {
    let (_, con) = run(Strategy::Concord, 256, 0);
    assert_eq!(con.stall_by_tag[gvf_sim::STALL_INDIRECT_CALL], 0);
    assert!(con.stall(AccessTag::TypeTag) > 0);
    assert_eq!(con.stall(AccessTag::VfuncPtr), 0);
}

#[test]
fn coal_instruction_inflation_exceeds_typepointer() {
    let n = 512;
    let (_, shared) = run(Strategy::SharedOa, n, 0);
    let (_, coal) = run(Strategy::Coal, n, 0);
    let (_, tp) = run(Strategy::TypePointerProto, n, 0);
    // Fig. 7: COAL adds far more instructions than TypePointer.
    assert!(coal.total_instrs() > tp.total_instrs());
    assert!(tp.total_instrs() >= shared.total_instrs());
}

#[test]
fn coal_heuristic_skips_converged_sites() {
    let (reg, tys) = registry();
    let mut mem = DeviceMemory::with_capacity(64 << 20);
    let mut prog = DeviceProgram::new(&mut mem, &reg, Strategy::Coal);
    let mut alloc = SharedOa::new();
    prog.register_types(&mut alloc);
    let obj = prog.construct(&mut mem, &mut alloc, tys[0]);
    prog.finalize_ranges(&mut mem, &alloc);

    // Every lane calls through the SAME object: the compiler marks the
    // site converged and COAL emits the plain CUDA sequence instead.
    let kernel = run_kernel(&mut mem, 32, |w| {
        let ptrs = lanes_from_fn(|_| Some(obj));
        prog.vcall(w, &CallSite::new(0).converged(), &ptrs, |w, fid| {
            assert_eq!(fid, MEOW);
            w.alu(1);
        });
    });
    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    assert!(
        stats.stall(AccessTag::VtablePtr) > 0,
        "fallback path reads the vptr"
    );
    assert_eq!(
        stats.stall(AccessTag::RangeWalk),
        0,
        "no range walk at converged site"
    );
}

#[test]
fn typepointer_works_on_cuda_allocator() {
    // Fig. 11: TypePointer is allocator-independent.
    let (reg, tys) = registry();
    let mut mem = DeviceMemory::with_capacity(64 << 20);
    let prog = DeviceProgram::new(&mut mem, &reg, Strategy::TypePointerHw);
    let mut alloc = CudaHeapAllocator::new();
    prog.register_types(&mut alloc);
    let objs: Vec<_> = (0..64)
        .map(|i| prog.construct(&mut mem, &mut alloc, tys[i % 3]))
        .collect();

    let mut calls = 0u32;
    run_kernel(&mut mem, 64, |w| {
        let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
        prog.vcall(w, &CallSite::new(0), &ptrs, |w, _| {
            calls += w.mask().count_ones()
        });
    });
    assert_eq!(calls, 64);
}

#[test]
fn tag_modes_agree() {
    let (reg, tys) = registry();
    for mode in [TagMode::Offset, TagMode::Index] {
        let mut mem = DeviceMemory::with_capacity(64 << 20);
        let prog = DeviceProgram::with_tag_mode(&mut mem, &reg, Strategy::TypePointerHw, mode);
        let mut alloc = SharedOa::new();
        prog.register_types(&mut alloc);
        let objs: Vec<_> = (0..96)
            .map(|i| prog.construct(&mut mem, &mut alloc, tys[i % 3]))
            .collect();
        let mut log = Vec::new();
        run_kernel(&mut mem, 96, |w| {
            let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
            prog.vcall(w, &CallSite::new(0), &ptrs, |w, fid| {
                for _ in w.active_lanes() {
                    log.push(fid);
                }
            });
        });
        assert_eq!(log.len(), 96);
        // Offset mode has no padding waste; index mode may.
        if mode == TagMode::Offset {
            assert_eq!(prog.vtable_padding_bytes(), 0);
        }
    }
}

#[test]
fn constructed_objects_report_their_type() {
    let (reg, tys) = registry();
    for strategy in [
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
    ] {
        let mut mem = DeviceMemory::with_capacity(64 << 20);
        let prog = DeviceProgram::new(&mut mem, &reg, strategy);
        let mut alloc = allocator_for(strategy);
        prog.register_types(alloc.as_mut());
        for &t in &tys {
            let p = prog.construct(&mut mem, alloc.as_mut(), t);
            assert_eq!(prog.type_of(&mut mem, p), Some(t), "{strategy}");
            if strategy.uses_tagged_pointers() {
                assert_eq!(p.tag(), prog.type_tag(t), "{strategy} must tag pointers");
            } else {
                assert!(p.is_canonical(), "{strategy} must not tag pointers");
            }
        }
    }
}

#[test]
fn proto_member_access_pays_masking_alu() {
    let (reg, tys) = registry();
    let count_compute = |strategy: Strategy| {
        let mut mem = DeviceMemory::with_capacity(64 << 20);
        let prog = DeviceProgram::new(&mut mem, &reg, strategy);
        let mut alloc = SharedOa::new();
        prog.register_types(&mut alloc);
        let objs: Vec<_> = (0..32)
            .map(|_| prog.construct(&mut mem, &mut alloc, tys[0]))
            .collect();
        let k = run_kernel(&mut mem, 32, |w| {
            let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
            prog.ld_field(w, &ptrs, 0, 8);
        });
        k.warps[0].dyn_instrs_of(gvf_sim::InstrClass::Compute)
    };
    assert_eq!(count_compute(Strategy::TypePointerHw), 0);
    assert_eq!(count_compute(Strategy::TypePointerProto), 1);
}

#[test]
fn branch_call_dispatches_by_register_type() {
    let (reg, tys) = registry();
    let mut mem = DeviceMemory::with_capacity(1 << 20);
    let prog = DeviceProgram::new(&mut mem, &reg, Strategy::Branch);
    let mut hits = [0u32; 3];
    let kernel = run_kernel(&mut mem, 64, |w| {
        let types = lanes_from_fn(|l| Some(tys[w.thread_id(l) % 3]));
        prog.branch_call(w, 0, &types, |w, fid| {
            let idx = match fid {
                MEOW => 0,
                BARK => 1,
                HISS => 2,
                other => panic!("unexpected callee {other}"),
            };
            hits[idx] += w.mask().count_ones();
            w.alu(1);
        });
    });
    assert_eq!(hits.iter().sum::<u32>(), 64);
    assert!(hits.iter().all(|&h| h >= 21));
    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    assert_eq!(
        stats.global_load_transactions, 0,
        "BRANCH touches no memory"
    );
}

#[test]
fn tag_budget_fallback_mixes_paths_correctly() {
    // Six single-slot types = 48 bytes of vTables; a 24-byte budget tags
    // the first three and sends the rest down the classic path (§6.1).
    let mut reg = TypeRegistry::new();
    let tys: Vec<_> = (0..6)
        .map(|t| reg.add_type(&format!("T{t}"), 16, &[FuncId(50 + t)]))
        .collect();
    let mut mem = gvf_mem::DeviceMemory::with_capacity(64 << 20);
    let prog = DeviceProgram::with_tag_budget(
        &mut mem,
        &reg,
        Strategy::TypePointerHw,
        TagMode::Offset,
        24,
    );
    let mut alloc = SharedOa::new();
    prog.register_types(&mut alloc);
    let objs: Vec<_> = (0..192)
        .map(|i| prog.construct(&mut mem, &mut alloc, tys[i % 6]))
        .collect();

    // Tag assignment: first three types fit, the rest carry NO_TAG.
    for (i, &t) in tys.iter().enumerate() {
        if i < 3 {
            assert_eq!(prog.type_tag(t) as u64, (i * 8) as u64);
        } else {
            assert_eq!(prog.type_tag(t), gvf_core::NO_TAG);
        }
        let obj = prog.construct(&mut mem, &mut alloc, t);
        assert_eq!(
            prog.type_of(&mut mem, obj),
            Some(t),
            "type_of through both paths"
        );
    }

    let mut log = vec![0u32; objs.len()];
    let kernel = run_kernel(&mut mem, objs.len(), |w| {
        let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
        prog.vcall(w, &CallSite::new(0), &ptrs, |w, fid| {
            for l in w.active_lanes().collect::<Vec<_>>() {
                log[w.warp_id() * 32 + l] = fid.0;
            }
        });
    });
    for (i, &f) in log.iter().enumerate() {
        assert_eq!(f, 50 + (i % 6) as u32, "object {i} dispatched wrongly");
    }
    // The fallback lanes read embedded vTable pointers; the tagged lanes
    // did not.
    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    assert!(
        stats.stall(AccessTag::VtablePtr) > 0,
        "fallback path must load vptrs"
    );
}

#[test]
fn concord_code_size_grows_with_candidates() {
    // §8.1: Concord trades code size for dispatch speed — the switch
    // duplicates the body per candidate arm.
    let mut reg = TypeRegistry::new();
    let tys: Vec<_> = (0..8u32)
        .map(|t| reg.add_type(&format!("T{t}"), 8, &[FuncId(t)]))
        .collect();
    let mut mem = DeviceMemory::with_capacity(8 << 20);
    let concord = DeviceProgram::new(&mut mem, &reg, Strategy::Concord);
    let cuda = DeviceProgram::new(&mut mem, &reg, Strategy::Cuda);
    let tp = DeviceProgram::new(&mut mem, &reg, Strategy::TypePointerHw);

    let body = 20;
    let narrow = CallSite::new(0).with_candidates(tys[..2].to_vec());
    let wide = CallSite::new(0);
    assert!(
        concord.static_callsite_instrs(&wide, body)
            > concord.static_callsite_instrs(&narrow, body) * 3
    );
    // The call-based schemes share one body: constant-size call sites.
    assert_eq!(
        cuda.static_callsite_instrs(&wide, body),
        cuda.static_callsite_instrs(&narrow, body)
    );
    assert!(tp.static_callsite_instrs(&wide, body) <= 5);
    assert!(concord.static_callsite_instrs(&wide, body) > 8 * body);
}
