//! `gvf` CLI: run any evaluated workload under any dispatch strategy on
//! the simulated GPU and print its hardware counters.
//!
//! ```sh
//! gvf --workload gol --strategy coal --scale 4 --iters 3
//! gvf --list
//! ```

use gvf::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: gvf --workload <name> [--strategy <name>] [--scale N] [--iters N] \
         [--seed N] [--cuda-alloc]\n       gvf --list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("workloads:");
        for k in WorkloadKind::EVALUATED {
            println!("  {:<8} ({})", k.label(), k.suite());
        }
        println!("strategies:");
        for s in [
            Strategy::Cuda,
            Strategy::Concord,
            Strategy::SharedOa,
            Strategy::Coal,
            Strategy::TypePointerProto,
            Strategy::TypePointerHw,
        ] {
            println!("  {}", s.label());
        }
        return;
    }

    let mut workload = None;
    let mut strategy = Strategy::SharedOa;
    let mut cfg = WorkloadConfig::eval();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--workload" | "-w" => {
                workload = Some(val(i).parse::<WorkloadKind>().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--strategy" | "-s" => {
                strategy = val(i).parse::<Strategy>().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--scale" => {
                cfg.scale = val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--iters" => {
                cfg.iterations = val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--cuda-alloc" => {
                cfg.allocator_override = Some(AllocatorKind::Cuda);
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(kind) = workload else { usage() };

    let r = run_workload(kind, strategy, &cfg);
    println!(
        "{} under {} (scale {}, {} iterations)",
        kind, strategy, cfg.scale, cfg.iterations
    );
    println!("{}", r.stats);
    println!("objects:               {}", r.table2.objects);
    println!("checksum:              {:#018x}", r.checksum);
    println!(
        "allocator:             {} regions, {:.1}% external fragmentation",
        r.alloc_stats.regions,
        r.alloc_stats.external_fragmentation() * 100.0
    );
    for (name, v) in &r.metrics {
        println!("{:<22} {v}", format!("{name}:"));
    }
}
