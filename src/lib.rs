//! # gvf — GPU Virtual Function optimization, reproduced in Rust
//!
//! This crate is the umbrella API for a full reproduction of
//! *"Judging a Type by Its Pointer: Optimizing GPU Virtual Functions"*
//! (Zhang, Alawneh & Rogers, ASPLOS 2021). It re-exports the component
//! crates:
//!
//! - [`mem`] — 49-bit GPU virtual address space, paged backing store and
//!   MMU (including the TypePointer tag-masking mode);
//! - [`sim`] — a cycle-approximate SIMT GPU timing simulator (warps,
//!   coalescer, L1/L2/DRAM, constant cache, hardware counters);
//! - [`alloc`] — device allocators: a CUDA-like baseline heap and the
//!   type-based **SharedOA** allocator;
//! - [`core`] — the paper's contribution: type registry, vTables, and
//!   the dispatch strategies (**CUDA**, **Concord**, **COAL**,
//!   **TypePointer**, **BRANCH**);
//! - [`workloads`] — the eleven object-oriented workloads from the
//!   paper's evaluation plus the scalability microbenchmarks.
//!
//! ## Quick start
//!
//! ```
//! use gvf::prelude::*;
//!
//! // Run Game of Life under two dispatch strategies and compare
//! // simulated kernel cycles. Functional results are identical.
//! let cfg = WorkloadConfig::tiny();
//! let base = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
//! let tp = run_workload(WorkloadKind::GameOfLife, Strategy::TypePointerHw, &cfg);
//! assert_eq!(base.checksum, tp.checksum);
//! assert!(tp.stats.cycles > 0 && base.stats.cycles > 0);
//! ```

pub use gvf_alloc as alloc;
pub use gvf_core as core;
pub use gvf_mem as mem;
pub use gvf_sim as sim;
pub use gvf_workloads as workloads;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use gvf_alloc::{AllocatorKind, CudaHeapAllocator, DeviceAllocator, SharedOa, TypeKey};
    pub use gvf_core::{CallSite, DeviceProgram, FuncId, Strategy, TagMode, TypeId, TypeRegistry};
    pub use gvf_mem::{DeviceMemory, MmuMode, VirtAddr};
    pub use gvf_sim::{
        lanes_from_fn, run_kernel, AccessTag, Gpu, GpuConfig, Stats, WarpCtx, WARP_SIZE,
    };
    pub use gvf_workloads::{
        run_workload, GraphAlgo, MicroParams, RunResult, WorkloadConfig, WorkloadKind,
    };
}
